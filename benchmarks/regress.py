"""Regression benchmark harness: BV hot path, serving runtime, sharded stack.

``--suite hotpath`` (default) times the operations that dominate Pretzel's
per-email costs (Figs. 6, 7 and 10).  ``--suite runtime`` measures multi-user
serving-loop throughput: 8 emails classified one-shot sequentially versus as
8 concurrent sessions through :class:`repro.core.runtime.ProviderRuntime`
(cross-session batched decrypts + the per-pair persistent OT extension).
``--suite shard`` measures the sharded serving stack of the §6.3 deployment
story: a stream of email waves over several mailboxes, driven three ways —
the PR 2 single-loop drive (fresh per-pair OT handshake per burst, exactly
the arrangement behind the committed runtime numbers), the same single loop
with a warm :class:`MailboxDirectory`, and a 4-worker
:class:`repro.core.runtime.ShardedRuntime` with windowed decrypt scheduling.
``--suite restart`` measures crash recovery: a shard worker is SIGKILLed
with an open decrypt window and the recovery latency is timed twice —
resuming from the worker's ``SessionState`` checkpoint versus recomputing
the in-flight emails from their features.
``--suite chaos`` measures goodput under degraded networks: the same spam
stream classified over a clean pipe and over seeded fault cocktails (1% and
5% drop/corrupt/reorder/duplicate per frame) with the
:class:`repro.twopc.reliable.ReliableChannel` ack/retransmit layer in
between, plus a raw (unreliable) control arm driven through the identical
cocktails.
``--suite micro`` measures the batched-fabrication scaling curves behind the
PR 6 tentpole: decrypt-many ms-per-ciphertext at batch 1/8/32/128 and the
§4.3 candidate extract-and-blind at B' ∈ {10, 20}.
``--suite latency`` measures end-to-end email latency SLOs: a seeded
bursty/diurnal trace over heavy-tailed mailboxes is replayed against the
windowed serving runtime under a virtual clock with a calibrated
deterministic service-cost model, once per static decrypt-window arm and
once with the adaptive (rate-driven) scheduler, reporting p50/p95/p99
latency and throughput per arm.
``--suite fabric`` scores the cross-host shard fabric: the shard suite's
email stream driven once through the in-box :class:`ShardedRuntime` and
once through a localhost-TCP :class:`repro.fabric.FabricRuntime` whose
first agent is **live-migrated to a fresh process mid-stream** with its
decrypt windows open.
The shard suite **hard-fails** if sharded throughput drops below the PR 2
single-loop drive, the restart suite hard-fails if snapshot resume is
not faster than recompute, the chaos suite hard-fails if any reliable
run fails to complete or its verdict diverges from the clean run, the
micro suite hard-fails if decrypt batching stops being superlinear (batch-32
per-ciphertext cost must beat batch 1) or, at n = 1024, if candidate blinding
loses its ≥2x margin over the PR 1 committed baseline, the latency
suite hard-fails unless the adaptive arm's p99 beats every static arm's,
and the fabric suite hard-fails if the migration loses, duplicates or
re-executes any email (verdicts must equal the uninterrupted in-box run's,
zero resubmissions, every email counted exactly once) or if the
deterministic metrics projection of the fabric's merged telemetry diverges
from the in-box run's.
Each
suite writes its medians to a
``BENCH_*.json`` file, so successive PRs can track the performance
trajectory instead of re-deriving it from one-off pytest-benchmark runs.

Usage::

    PYTHONPATH=src python benchmarks/regress.py                 # full-size ring (n=1024)
    PYTHONPATH=src python benchmarks/regress.py --ring-degree 256 --repeat 3
    PYTHONPATH=src python benchmarks/regress.py --suite runtime
    PYTHONPATH=src python benchmarks/regress.py --suite shard
    PYTHONPATH=src python benchmarks/regress.py --suite restart
    PYTHONPATH=src python benchmarks/regress.py --suite chaos
    PYTHONPATH=src python benchmarks/regress.py --suite micro
    PYTHONPATH=src python benchmarks/regress.py --suite fabric
    PYTHONPATH=src python benchmarks/regress.py --output BENCH_smoke.json

The JSON schema is flat on purpose: ``{"meta": {...}, "results": {name: ...}}``.
Compare two files with any JSON diff tool; lower is better for ``*_ms`` rows,
higher for ``*_emails_per_s`` rows.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.core.runtime import (
    DecryptScheduler,
    MailboxDirectory,
    ProviderRuntime,
    ShardedRuntime,
    run_spam_batch,
    shard_of_address,
    spam_job,
)
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import generate_group
from repro.crypto.packing import PackedLinearModel, decrypt_dot_products
from repro.fabric import launch_fabric, metrics_projection, spawn_local_agent
from repro.obs import get_registry, get_tracer, scoped_telemetry
from repro.obs.export import write_artifacts
from repro.twopc.blinding import blind_dot_products, blind_extracted_candidates
from repro.twopc.spam import SpamFilterProtocol

SPAM_FEATURE_ROWS = 500
EMAIL_FEATURES = 100
TOPIC_CATEGORIES = 64
TOPIC_CANDIDATES = 10
RUNTIME_SESSIONS = 8
RUNTIME_DH_BITS = 256

SHARD_WORKERS = 4
SHARD_MAILBOXES = 4
SHARD_WAVES = 4
SHARD_EMAILS_PER_WAVE = 8  # 2 per mailbox per wave; 32 emails per stream
SHARD_WINDOW_BURSTS = 2


def _median_ms(function, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        function()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def run(ring_degree: int, repeat: int) -> dict:
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    keys = scheme.generate_keypair()
    results: dict[str, float] = {}

    results["bv_keygen_ms"] = _median_ms(scheme.generate_keypair, repeat)
    ciphertext = scheme.encrypt_slots(keys.public, [1, 2, 3])
    results["bv_encrypt_ms"] = _median_ms(
        lambda: scheme.encrypt_slots(keys.public, [1, 2, 3]), repeat
    )
    results["bv_decrypt_ms"] = _median_ms(
        lambda: scheme.decrypt_slots(keys, ciphertext), repeat
    )
    batch = [scheme.encrypt_slots(keys.public, [index]) for index in range(8)]
    results["bv_decrypt_many8_ms"] = _median_ms(
        lambda: scheme.decrypt_slots_many(keys, batch), repeat
    )
    results["bv_add_ms"] = _median_ms(lambda: scheme.add(ciphertext, ciphertext), repeat)
    results["bv_shift_up_ms"] = _median_ms(lambda: scheme.shift_up(ciphertext, 2), repeat)

    # Spam arm (Fig. 7 client): across-row packed two-column model.
    rng = np.random.default_rng(0)
    spam_rows = rng.integers(0, 1000, size=(SPAM_FEATURE_ROWS + 1, 2)).tolist()
    spam_model = PackedLinearModel.encrypt(scheme, keys.public, spam_rows, across_rows=True)
    sparse = [
        (int(row), int(freq))
        for row, freq in zip(
            rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False),
            rng.integers(1, 8, size=EMAIL_FEATURES),
        )
    ]
    spam_dot = spam_model.dot_products(sparse)  # warm the model stacks
    results["spam_dot_products_ms"] = _median_ms(lambda: spam_model.dot_products(sparse), repeat)
    results["spam_blinding_ms"] = _median_ms(
        lambda: blind_dot_products(
            scheme, keys.public, spam_model, spam_dot, output_columns=[0, 1], dot_bits=20
        ),
        repeat,
    )
    results["spam_client_total_ms"] = (
        results["spam_dot_products_ms"] + results["spam_blinding_ms"]
    )
    blinded = blind_dot_products(
        scheme, keys.public, spam_model, spam_dot, output_columns=[0, 1], dot_bits=20
    )
    results["spam_provider_decrypt_ms"] = _median_ms(
        lambda: scheme.decrypt_slots_many(keys, blinded.ciphertexts), repeat
    )

    # Topic arm (Fig. 10 client): candidate extraction over a wider model.
    topic_rows = rng.integers(0, 1000, size=(101, TOPIC_CATEGORIES)).tolist()
    topic_model = PackedLinearModel.encrypt(scheme, keys.public, topic_rows, across_rows=True)
    topic_sparse = [(int(row), 1) for row in rng.choice(100, size=30, replace=False)]
    topic_dot = topic_model.dot_products(topic_sparse)
    candidates = list(range(TOPIC_CANDIDATES))
    results["topic_dot_products_ms"] = _median_ms(
        lambda: topic_model.dot_products(topic_sparse), repeat
    )
    results["topic_candidate_blinding_ms"] = _median_ms(
        lambda: blind_extracted_candidates(
            scheme, keys.public, topic_model, topic_dot, candidate_columns=candidates, dot_bits=20
        ),
        repeat,
    )

    # Sanity pin: the batched path must agree with the plaintext reference.
    reference = np.array(spam_rows[-1], dtype=np.int64)
    for row, freq in sparse:
        reference = reference + freq * np.array(spam_rows[row], dtype=np.int64)
    decrypted = decrypt_dot_products(scheme, keys, spam_dot)
    if decrypted != [int(value) % scheme.slot_modulus for value in reference]:
        raise AssertionError("batched dot products disagree with the plaintext reference")

    return results


def run_runtime(ring_degree: int, repeat: int) -> dict:
    """Multi-user serving-loop throughput: sequential one-shots vs 8 concurrent.

    The sequential arm is the one-shot baseline (fresh sessions, fresh base
    OTs per email); the concurrent arm drives the same 8 emails through the
    serving loop, which batches the provider decrypts across sessions and
    amortises one per-pair OT-extension handshake over the whole burst.
    """
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(7)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    setup = protocol.setup(quantized)
    emails = [
        {int(row): 1 for row in rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False)}
        for _ in range(RUNTIME_SESSIONS)
    ]
    # Warm the one-time caches both arms share (model stacks, circuits).
    expected = [protocol.classify_email(setup, features).is_spam for features in emails]

    sequential_rates = []
    concurrent_rates = []
    batch_counts = []
    largest_batches = []
    for _ in range(repeat):
        start = time.perf_counter()
        sequential = [protocol.classify_email(setup, features) for features in emails]
        sequential_rates.append(RUNTIME_SESSIONS / (time.perf_counter() - start))
        runtime = ProviderRuntime()
        start = time.perf_counter()
        concurrent = run_spam_batch(protocol, setup, emails, runtime=runtime)
        concurrent_rates.append(RUNTIME_SESSIONS / (time.perf_counter() - start))
        # The batch *count* (and largest batch) are what detect a batching
        # regression: total ciphertexts is invariant under batching.
        batch_counts.append(len(runtime.decrypt_batch_sizes))
        largest_batches.append(max(runtime.decrypt_batch_sizes))
        if [r.is_spam for r in sequential] != expected or [r.is_spam for r in concurrent] != expected:
            raise AssertionError("concurrent and sequential verdicts disagree")

    sequential_rate = statistics.median(sequential_rates)
    concurrent_rate = statistics.median(concurrent_rates)
    # The suite's reason to exist: the serving loop must never be slower than
    # one-shot sequential sessions.  Fail loudly (CI-visible) if it regresses.
    if concurrent_rate < sequential_rate:
        raise AssertionError(
            f"serving-loop throughput regressed: {concurrent_rate:.2f} emails/s "
            f"concurrent < {sequential_rate:.2f} emails/s sequential"
        )
    return {
        "runtime_sequential_emails_per_s": sequential_rate,
        "runtime_concurrent8_emails_per_s": concurrent_rate,
        "runtime_concurrent_speedup": concurrent_rate / sequential_rate,
        "runtime_decrypt_batches_per_burst": statistics.median(batch_counts),
        "runtime_largest_decrypt_batch": statistics.median(largest_batches),
    }


def _shard_addresses(num_shards: int) -> list[str]:
    """SHARD_MAILBOXES addresses spread over the stable hash partition.

    Walks candidate addresses preferring unoccupied shards; once every shard
    owns a mailbox (or there are more mailboxes than shards) further
    addresses are taken as they come, so the walk always terminates.
    """
    addresses: list[str] = []
    taken: set[int] = set()
    candidate = 0
    while len(addresses) < SHARD_MAILBOXES:
        address = f"mailbox-{candidate}@bench.example"
        shard = shard_of_address(address, num_shards)
        if shard not in taken or len(taken) == num_shards:
            taken.add(shard)
            addresses.append(address)
        candidate += 1
    return addresses


def run_shard(ring_degree: int, repeat: int) -> dict:
    """Sharded serving-stack throughput versus the PR 2 single-loop drive.

    One workload, three drives.  The stream is SHARD_WAVES waves of
    SHARD_EMAILS_PER_WAVE emails spread over SHARD_MAILBOXES mailboxes (own
    key pairs, like real users):

    * ``singleloop`` — the PR 2 arrangement the committed runtime numbers
      use: each wave runs as concurrent sessions in one process via
      ``run_spam_batch``, paying a fresh per-pair base-OT handshake per
      mailbox per burst (that is what the one-shot drive does);
    * ``singleloop_warm`` — the same single process with a warm
      :class:`MailboxDirectory` (persistent OT pools, pre-stacked models), to
      separate what persistence buys from what sharding buys;
    * ``sharded`` — a ``SHARD_WORKERS``-process :class:`ShardedRuntime`,
      mailboxes partitioned by stable hash, per-worker warm directories and a
      ``SHARD_WINDOW_BURSTS``-burst :class:`DecryptScheduler` window
      accumulating decrypts across waves.

    Registration/handshake state for the warm arms is built *outside* the
    timed region — steady-state serving throughput is the §6.3 quantity.
    The suite hard-fails if ``sharded`` falls below ``singleloop``.
    """
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(11)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    addresses = _shard_addresses(SHARD_WORKERS)
    setups = {address: protocol.setup(quantized) for address in addresses}

    total_emails = SHARD_WAVES * SHARD_EMAILS_PER_WAVE
    per_wave_per_mailbox = SHARD_EMAILS_PER_WAVE // SHARD_MAILBOXES
    waves: list[list[tuple[str, dict[int, int]]]] = []
    for _ in range(SHARD_WAVES):
        wave = []
        for address in addresses:
            for _ in range(per_wave_per_mailbox):
                features = {
                    int(row): 1
                    for row in rng.choice(
                        SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False
                    )
                }
                wave.append((address, features))
        waves.append(wave)
    # Warm the shared one-time caches (circuits, model stacks) and pin truth.
    truth: list[list[bool]] = []
    for wave in waves:
        truth.append(
            [
                protocol.classify_email(setups[address], features).is_spam
                for address, features in wave
            ]
        )

    # -- warm state the persistent arms keep between waves (untimed) --------
    directory = MailboxDirectory()
    for address in addresses:
        directory.register_spam(address, protocol, setups[address])
    sharded_runtime = ShardedRuntime(
        num_shards=SHARD_WORKERS, window_bursts=SHARD_WINDOW_BURSTS
    )
    for address in addresses:
        sharded_runtime.register_spam(address, protocol, setups[address])

    singleloop_rates: list[float] = []
    warm_rates: list[float] = []
    sharded_rates: list[float] = []
    try:
        for _ in range(repeat):
            # Arm 1: the PR 2 single-loop drive (fresh handshakes per burst).
            start = time.perf_counter()
            singleloop_verdicts = []
            for wave in waves:
                by_mailbox: dict[str, list[dict[int, int]]] = {}
                for address, features in wave:
                    by_mailbox.setdefault(address, []).append(features)
                wave_results = {
                    address: run_spam_batch(protocol, setups[address], feature_sets)
                    for address, feature_sets in by_mailbox.items()
                }
                cursors = {address: 0 for address in by_mailbox}
                for address, _ in wave:
                    singleloop_verdicts.append(
                        wave_results[address][cursors[address]].is_spam
                    )
                    cursors[address] += 1
            singleloop_rates.append(total_emails / (time.perf_counter() - start))

            # Arm 2: one process, warm directory (persistent per-pair pools).
            start = time.perf_counter()
            warm_verdicts = []
            for wave in waves:
                runtime = ProviderRuntime()
                jobs = []
                for address, features in wave:
                    protocol_w, setup_w = directory.spam_of(address)
                    jobs.append(
                        spam_job(
                            protocol_w,
                            setup_w,
                            features,
                            label=len(jobs),
                            ot_pool=directory.spam_pool_of(address),
                        )
                    )
                runtime.run(jobs)
                warm_verdicts += [job.client.is_spam for job in jobs]
            warm_rates.append(total_emails / (time.perf_counter() - start))

            # Arm 3: the sharded stack (worker processes + windowed decrypts).
            start = time.perf_counter()
            sharded_results = sharded_runtime.run_spam_stream(waves)
            sharded_rates.append(total_emails / (time.perf_counter() - start))
            sharded_verdicts = [result.is_spam for result in sharded_results]

            flat_truth = [verdict for wave in truth for verdict in wave]
            if (
                singleloop_verdicts != flat_truth
                or warm_verdicts != flat_truth
                or sharded_verdicts != flat_truth
            ):
                raise AssertionError("serving arms disagree with the sequential truth")
        stats = sharded_runtime.shard_stats()
        # Fold the worker-side registries into this process's registry so
        # the suite telemetry artifact covers the sharded arm too.
        get_registry().merge_snapshot(sharded_runtime.aggregated_metrics())
    finally:
        sharded_runtime.close()

    singleloop_rate = statistics.median(singleloop_rates)
    warm_rate = statistics.median(warm_rates)
    sharded_rate = statistics.median(sharded_rates)
    # The row's reason to exist: scaling out must never cost throughput
    # against the single-loop drive.  Fail loudly (CI-visible) if it does.
    if sharded_rate < singleloop_rate:
        raise AssertionError(
            f"sharded serving regressed: {sharded_rate:.2f} emails/s with "
            f"{SHARD_WORKERS} workers < {singleloop_rate:.2f} emails/s single-loop"
        )
    largest_batch = max(
        (max(stat["decrypt_batch_sizes"], default=0) for stat in stats), default=0
    )
    return {
        "shard_singleloop_emails_per_s": singleloop_rate,
        "shard_singleloop_warm_emails_per_s": warm_rate,
        f"shard_sharded{SHARD_WORKERS}_emails_per_s": sharded_rate,
        "shard_speedup_vs_singleloop": sharded_rate / singleloop_rate,
        "shard_largest_decrypt_batch": largest_batch,
        "shard_mailboxes": SHARD_MAILBOXES,
        "shard_window_bursts": SHARD_WINDOW_BURSTS,
        "shard_stream_emails": total_emails,
    }


FABRIC_AGENTS = 2
FABRIC_WINDOW_BURSTS = 2


def run_fabric(ring_degree: int, repeat: int) -> dict:
    """Cross-host fabric equivalence: localhost TCP agents vs in-box workers.

    The shard suite's email stream (SHARD_WAVES waves over SHARD_MAILBOXES
    mailboxes), driven twice per repeat:

    * ``inbox`` — a fresh ``FABRIC_AGENTS``-process in-box
      :class:`ShardedRuntime` (pipe transport), uninterrupted;
    * ``tcp`` — a fresh :class:`repro.fabric.FabricRuntime` over
      ``FABRIC_AGENTS`` localhost TCP agent processes, with one **live
      migration mid-stream**: after the first wave (decrypt windows still
      open, ``FABRIC_WINDOW_BURSTS``-burst scheduler), agent 0's whole hash
      range is checkpointed, restored onto a pre-attached spare process and
      the remaining waves land on the new owner.

    The spare is spawned and attached *before* the timed region (Python
    process startup is not a serving cost); the migration itself — quiesce,
    checkpoint, restore, redirect, retire — happens inside it.

    Hard-fail gates, per repeat: the migration must resubmit **zero**
    emails; fabric verdicts must equal the uninterrupted in-box run's and
    the sequential truth (nothing lost, duplicated or re-executed);
    the merged ``emails_served_total`` must equal the stream size exactly
    (each email served on exactly one agent, source *or* target); and the
    deterministic metrics projection (partition-invariant counters and
    count-valued histograms — see :func:`repro.fabric.metrics_projection`)
    of the fabric's merged telemetry must equal the in-box run's.
    """
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(11)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    addresses = _shard_addresses(FABRIC_AGENTS)
    setups = {address: protocol.setup(quantized) for address in addresses}

    total_emails = SHARD_WAVES * SHARD_EMAILS_PER_WAVE
    per_wave_per_mailbox = SHARD_EMAILS_PER_WAVE // SHARD_MAILBOXES
    waves: list[list[tuple[str, dict[int, int]]]] = []
    for _ in range(SHARD_WAVES):
        wave = []
        for address in addresses:
            for _ in range(per_wave_per_mailbox):
                features = {
                    int(row): 1
                    for row in rng.choice(
                        SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False
                    )
                }
                wave.append((address, features))
        waves.append(wave)
    flat_truth = [
        protocol.classify_email(setups[address], features).is_spam
        for wave in waves
        for address, features in wave
    ]

    def served_total(snapshot: dict) -> float:
        return sum(
            entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "emails_served_total"
        )

    inbox_rates: list[float] = []
    tcp_rates: list[float] = []
    fabric_metrics: dict = {}
    for _ in range(repeat):
        # Arm 1: the uninterrupted in-box sharded drive (fresh runtime per
        # repeat so its telemetry covers exactly one stream).
        with scoped_telemetry():
            with ShardedRuntime(
                num_shards=FABRIC_AGENTS, window_bursts=FABRIC_WINDOW_BURSTS
            ) as sharded:
                for address in addresses:
                    sharded.register_spam(address, protocol, setups[address])
                start = time.perf_counter()
                inbox_verdicts = [
                    result.is_spam for result in sharded.run_spam_stream(waves)
                ]
                inbox_rates.append(total_emails / (time.perf_counter() - start))
                inbox_metrics = sharded.aggregated_metrics()
        if inbox_verdicts != flat_truth:
            raise AssertionError("in-box arm disagrees with the sequential truth")

        # Arm 2: the TCP fabric, live migration after the first wave.
        runtime, agents = launch_fabric(
            FABRIC_AGENTS, window_bursts=FABRIC_WINDOW_BURSTS, metrics_interval=0.05
        )
        try:
            for address in addresses:
                runtime.register_spam(address, protocol, setups[address])
            spare = spawn_local_agent(shard_index=FABRIC_AGENTS)
            agents.append(spare)
            target = runtime.attach_agent(spare)

            start = time.perf_counter()
            job_ids = runtime.submit_spam(waves[0])
            resubmitted = runtime.migrate_agent(0, target)
            for wave in waves[1:]:
                job_ids += runtime.submit_spam(wave)
            runtime.drain()
            tcp_verdicts = [
                runtime.take_result(job_id).is_spam for job_id in job_ids
            ]
            tcp_rates.append(total_emails / (time.perf_counter() - start))
            fabric_metrics = runtime.aggregated_metrics()
        finally:
            runtime.close()
            for agent in agents:
                if agent.wait(timeout=10.0) is None:
                    agent.kill()

        # The gates: the whole point of the suite, checked every repeat.
        if resubmitted != 0:
            raise AssertionError(
                f"live migration resubmitted {resubmitted} emails — the "
                "checkpoint handover must carry every open window"
            )
        if tcp_verdicts != inbox_verdicts:
            raise AssertionError(
                "fabric verdicts diverged from the uninterrupted in-box run "
                "(an email was lost, duplicated or re-executed across the "
                "migration)"
            )
        served = served_total(fabric_metrics)
        if served != total_emails:
            raise AssertionError(
                f"fabric counted {served:.0f} servings for {total_emails} "
                "emails — the migration double-counted or dropped work"
            )
        if metrics_projection(fabric_metrics) != metrics_projection(inbox_metrics):
            raise AssertionError(
                "deterministic metrics projection diverged between the fabric "
                "and the in-box run — serving work moved or repeated"
            )

    # Fold the last fabric stream's agent registries into this process's
    # registry so the suite telemetry artifact covers the TCP arm.
    get_registry().merge_snapshot(fabric_metrics)

    inbox_rate = statistics.median(inbox_rates)
    tcp_rate = statistics.median(tcp_rates)
    return {
        "fabric_inbox_emails_per_s": inbox_rate,
        "fabric_tcp_emails_per_s": tcp_rate,
        "fabric_tcp_vs_inbox": tcp_rate / inbox_rate,
        "fabric_migration_resubmitted": 0.0,
        "fabric_agents": FABRIC_AGENTS,
        "fabric_stream_emails": total_emails,
        "fabric_window_bursts": FABRIC_WINDOW_BURSTS,
    }


RESTART_EMAILS = 6
RESTART_WINDOW_BURSTS = 100  # the window stays open until drain — a true mid-window kill


def run_restart(ring_degree: int, repeat: int) -> dict:
    """Crash-recovery latency: resume-from-snapshot vs recompute-from-features.

    One shard, one mailbox, RESTART_EMAILS emails submitted into a
    wide-open decrypt window; the worker is then SIGKILLed (no shutdown
    hook runs — the only surviving state is the checkpoint it wrote when it
    acked the burst).  Two recovery arms, both timed from ``restart_shard``
    through ``drain``:

    * ``recompute`` — no checkpoint directory: the parent replays
      registrations and resubmits every in-flight email from its features,
      re-running the whole client side (dot products, blinding, Yao start);
    * ``resume`` — a :class:`~repro.core.runtime.FileSessionStore`
      checkpoint: the replacement worker restores the parked sessions from
      their ``SessionState`` snapshots and only the not-yet-executed steps
      (the batched decrypt and the Yao finish) run.

    Both arms replay registrations (key-pair pickling, model re-stacking),
    but they deliberately do NOT pay the same per-pair base-OT handshake:
    recompute must rebuild a fresh OT pool, while resume restores the old
    pool from the checkpoint and skips the handshake — that skipped work is
    part of what the snapshot *is*, so it belongs inside the measured delta.
    Verdicts of both arms are checked against the uninterrupted truth, the
    resume arm must resubmit **zero** emails, and the suite hard-fails if
    resume is not faster than recompute — the whole point of the
    persistence layer.
    """
    import os
    import signal
    import tempfile

    from repro.core.runtime import ShardedRuntime

    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(23)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    setup = protocol.setup(quantized)
    address = "restart@bench.example"
    emails = [
        {int(row): 1 for row in rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False)}
        for _ in range(RESTART_EMAILS)
    ]
    # Uninterrupted truth (also warms circuits/stacks both arms share).
    truth = [protocol.classify_email(setup, features).is_spam for features in emails]

    def one_recovery(checkpoint_dir: str | None) -> float:
        with ShardedRuntime(
            num_shards=1,
            window_bursts=RESTART_WINDOW_BURSTS,
            checkpoint_dir=checkpoint_dir,
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            job_ids = runtime.submit_spam([(address, features) for features in emails])
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            begin = time.perf_counter()
            resubmitted = runtime.restart_shard(0)
            runtime.drain()
            elapsed_ms = (time.perf_counter() - begin) * 1e3
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
        if verdicts != truth:
            raise AssertionError("recovered verdicts disagree with the uninterrupted run")
        if checkpoint_dir is not None and resubmitted != 0:
            raise AssertionError(
                f"resume arm resubmitted {resubmitted} emails; snapshots were not used"
            )
        return elapsed_ms

    recompute_samples = []
    resume_samples = []
    for _ in range(repeat):
        recompute_samples.append(one_recovery(None))
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            resume_samples.append(one_recovery(checkpoint_dir))

    recompute_ms = statistics.median(recompute_samples)
    resume_ms = statistics.median(resume_samples)
    # The suite's reason to exist: resuming from snapshots must beat
    # re-running the protocol.  Fail loudly (CI-visible) if it does not.
    if resume_ms >= recompute_ms:
        raise AssertionError(
            f"snapshot resume regressed: {resume_ms:.1f} ms >= "
            f"{recompute_ms:.1f} ms recompute for a mid-window worker kill"
        )
    return {
        "restart_recompute_ms": recompute_ms,
        "restart_resume_ms": resume_ms,
        "restart_resume_speedup": recompute_ms / resume_ms,
        "restart_inflight_emails": RESTART_EMAILS,
    }


CHAOS_EMAILS = 6
CHAOS_RATES = (0.01, 0.05)
CHAOS_SEED_BASE = 20170814  # deterministic by default; CI varies it per run


def run_chaos(ring_degree: int, repeat: int) -> dict:
    """Goodput under seeded fault cocktails: reliable arm vs raw control.

    One spam stream, three network conditions.  CHAOS_EMAILS emails are
    classified over (a) a clean loopback pipe, (b) pipes injecting the 1% and
    5% loss cocktails (drop/corrupt/reorder/duplicate, each at the named rate
    per frame) with :class:`~repro.twopc.reliable.ReliableChannel` providing
    exactly-once in-order delivery, and (c) the same cocktails over the bare
    :class:`~repro.twopc.transport.FaultyTransport` with no reliability layer
    — the control that shows the damage is real.

    The reliable arms **hard-fail** if any run does not complete or any
    verdict diverges from the clean run; the raw arm merely reports its
    completion rate (it is expected to fail on seeds where faults land).
    Goodput ratios (chaotic emails/s over clean emails/s) are the headline
    rows: they price what resilience costs at each damage level.
    """
    import os

    from repro.exceptions import ProtocolError
    from repro.twopc.reliable import chaos_channel
    from repro.twopc.transport import FaultSpec, FaultyTransport, LoopbackTransport
    from repro.twopc.transport import FramedChannel
    from repro.twopc.wire import WireCodec

    seed_base = int(os.environ.get("CHAOS_SEED", str(CHAOS_SEED_BASE)))
    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(17)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    setup = protocol.setup(quantized)
    emails = [
        {int(row): 1 for row in rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False)}
        for _ in range(CHAOS_EMAILS)
    ]
    # Uninterrupted truth (also warms the circuits/stacks every arm shares).
    truth = [protocol.classify_email(setup, features).is_spam for features in emails]

    clean_rates: list[float] = []
    reliable_rates: dict[float, list[float]] = {rate: [] for rate in CHAOS_RATES}
    retransmissions: dict[float, int] = {rate: 0 for rate in CHAOS_RATES}
    faults_injected: dict[float, int] = {rate: 0 for rate in CHAOS_RATES}
    raw_completed = 0
    raw_attempted = 0
    for round_index in range(repeat):
        start = time.perf_counter()
        clean = [protocol.classify_email(setup, features).is_spam for features in emails]
        clean_rates.append(CHAOS_EMAILS / (time.perf_counter() - start))
        if clean != truth:
            raise AssertionError("clean verdicts drifted between rounds")

        for rate in CHAOS_RATES:
            start = time.perf_counter()
            for index, features in enumerate(emails):
                seed = seed_base + 1000 * round_index + index
                spec = FaultSpec.loss_cocktail(rate, seed=seed)
                channel, faulty, reliable = chaos_channel(
                    spec, scheme=scheme, public_key=setup.keypair.public
                )
                result = protocol.classify_email(setup, features, channel=channel)
                # The suite's reason to exist: under these cocktails the
                # reliable arm must complete with bit-identical verdicts.
                # Fail loudly (CI-visible, seed in the message) if not.
                if result.is_spam != truth[index]:
                    raise AssertionError(
                        f"chaos verdict diverged at rate={rate} seed={seed} "
                        f"(rerun with CHAOS_SEED={seed_base})"
                    )
                retransmissions[rate] += reliable.stats["retransmissions"]
                # fault_counts() is exact even past the bounded fault_log cap.
                faults_injected[rate] += sum(faulty.fault_counts().values())
            reliable_rates[rate].append(CHAOS_EMAILS / (time.perf_counter() - start))

        # Raw control arm at the heavy rate: same cocktail, no reliability.
        for index, features in enumerate(emails):
            seed = seed_base + 1000 * round_index + index
            faulty = FaultyTransport(
                LoopbackTransport(parties=("client", "provider")),
                FaultSpec.loss_cocktail(CHAOS_RATES[-1], seed=seed),
            )
            codec = WireCodec(scheme=scheme, public_key=setup.keypair.public)
            raw_attempted += 1
            try:
                result = protocol.classify_email(
                    setup, features, channel=FramedChannel(faulty, codec)
                )
            except ProtocolError:
                continue
            if result.is_spam == truth[index]:
                raw_completed += 1

    clean_rate = statistics.median(clean_rates)
    results = {"chaos_clean_emails_per_s": clean_rate}
    for rate in CHAOS_RATES:
        label = f"{rate * 100:g}pct"
        chaotic_rate = statistics.median(reliable_rates[rate])
        results[f"chaos_reliable_{label}_emails_per_s"] = chaotic_rate
        results[f"chaos_goodput_ratio_{label}"] = chaotic_rate / clean_rate
        results[f"chaos_retransmissions_{label}"] = retransmissions[rate]
        results[f"chaos_faults_injected_{label}"] = faults_injected[rate]
    results["chaos_raw_5pct_completion_rate"] = raw_completed / raw_attempted
    results["chaos_stream_emails"] = CHAOS_EMAILS
    return results


MICRO_DECRYPT_BATCHES = (1, 8, 32, 128)
MICRO_CANDIDATE_COUNTS = (10, 20)
# PR 1's committed BENCH_bv_hotpath_n1024.json row for topic_candidate_blinding_ms
# (B' = 10, n = 1024).  The micro suite's blinding gate is pinned against it.
MICRO_BLINDING_BASELINE_N1024_MS = 17.9272
MICRO_BLINDING_REQUIRED_SPEEDUP = 2.0


def run_micro(ring_degree: int, repeat: int) -> dict:
    """Batched-fabrication scaling curves with hard-fail regression gates.

    Two curves, two gates:

    * **decrypt-many scaling** — one stacked decrypt at batch sizes
      ``MICRO_DECRYPT_BATCHES``, reported as *ms per ciphertext*.  With the
      Garner int64 CRT the per-ciphertext cost must fall as the batch grows
      (superlinear batching); the suite hard-fails if the batch-32 per-
      ciphertext cost is not strictly below batch 1.

    * **candidate blinding** — Pretzel's §4.3 extract-and-blind over
      B' ∈ ``MICRO_CANDIDATE_COUNTS`` candidates on the hotpath suite's topic
      model.  At the full-size ring the B' = 10 row is gated against the PR 1
      committed baseline (``MICRO_BLINDING_BASELINE_N1024_MS``): the suite
      hard-fails unless it is at least ``MICRO_BLINDING_REQUIRED_SPEEDUP``×
      faster.

    The suite also pins correctness inline: the batched blinding path must be
    byte-identical to the per-candidate reference loop on a shared PRG stream
    before any timing is trusted.
    """
    from repro.crypto.prg import Prg
    from repro.twopc.blinding import blind_extracted_candidates_reference

    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    keys = scheme.generate_keypair()
    results: dict[str, float] = {}

    # -- fabrication: one batched encryption vs the per-vector loop ---------
    vectors = [[index + 1] for index in range(10)]
    results["micro_encrypt_loop10_ms"] = _median_ms(
        lambda: [scheme.encrypt_slots(keys.public, vector) for vector in vectors], repeat
    )
    results["micro_encrypt_many10_ms"] = _median_ms(
        lambda: scheme.encrypt_slots_many(keys.public, vectors), repeat
    )

    # -- decrypt-many scaling curve -----------------------------------------
    largest = max(MICRO_DECRYPT_BATCHES)
    pool = scheme.encrypt_slots_many(
        keys.public, [[index, index + 1] for index in range(largest)]
    )
    per_ciphertext: dict[int, float] = {}
    for batch in MICRO_DECRYPT_BATCHES:
        subset = pool[:batch]
        total_ms = _median_ms(lambda: scheme.decrypt_slots_many(keys, subset), repeat)
        per_ciphertext[batch] = total_ms / batch
        results[f"micro_decrypt_batch{batch}_ms_per_ct"] = per_ciphertext[batch]
    # Gate 1: batching must buy more than the Python-loop savings.
    if per_ciphertext[32] >= per_ciphertext[1]:
        raise AssertionError(
            f"decrypt-many batching regressed: {per_ciphertext[32]:.4f} ms/ct at "
            f"batch 32 >= {per_ciphertext[1]:.4f} ms/ct at batch 1"
        )
    results["micro_decrypt_batch32_scaling"] = per_ciphertext[1] / per_ciphertext[32]

    # -- candidate blinding at B' ∈ {10, 20} --------------------------------
    rng = np.random.default_rng(0)
    topic_rows = rng.integers(0, 1000, size=(101, TOPIC_CATEGORIES)).tolist()
    topic_model = PackedLinearModel.encrypt(scheme, keys.public, topic_rows, across_rows=True)
    topic_sparse = [(int(row), 1) for row in rng.choice(100, size=30, replace=False)]
    topic_dot = topic_model.dot_products(topic_sparse)
    # Correctness pin before timing: batched path byte-identical to the
    # per-candidate reference loop on one shared PRG stream.
    candidates = list(range(MICRO_CANDIDATE_COUNTS[0]))
    seed = bytes(range(32))
    batched = blind_extracted_candidates(
        scheme, keys.public, topic_model, topic_dot, candidates, dot_bits=20,
        prg=Prg(seed, domain=b"micro-blind"),
    )
    reference = blind_extracted_candidates_reference(
        scheme, keys.public, topic_model, topic_dot, candidates, dot_bits=20,
        prg=Prg(seed, domain=b"micro-blind"),
    )
    if batched.output_noise != reference.output_noise or any(
        scheme.serialize_ciphertext(b) != scheme.serialize_ciphertext(r)
        for b, r in zip(batched.ciphertexts, reference.ciphertexts)
    ):
        raise AssertionError("vectorised blinding diverged from the reference loop")
    for count in MICRO_CANDIDATE_COUNTS:
        candidate_columns = list(range(count))
        results[f"micro_candidate_blinding_b{count}_ms"] = _median_ms(
            lambda: blind_extracted_candidates(
                scheme, keys.public, topic_model, topic_dot,
                candidate_columns=candidate_columns, dot_bits=20,
            ),
            repeat,
        )
    # Gate 2 (full-size ring only — the baseline is an n=1024 number): the
    # B' = 10 row must beat PR 1's committed 17.93 ms by at least 2x.
    b10 = results[f"micro_candidate_blinding_b{MICRO_CANDIDATE_COUNTS[0]}_ms"]
    if ring_degree == 1024:
        speedup = MICRO_BLINDING_BASELINE_N1024_MS / b10
        results["micro_blinding_speedup_vs_pr1"] = speedup
        if speedup < MICRO_BLINDING_REQUIRED_SPEEDUP:
            raise AssertionError(
                f"candidate blinding regressed: {b10:.2f} ms is only "
                f"{speedup:.2f}x the PR 1 baseline "
                f"({MICRO_BLINDING_BASELINE_N1024_MS} ms); need "
                f"{MICRO_BLINDING_REQUIRED_SPEEDUP}x"
            )
    results["micro_gates_checked"] = 2.0 if ring_degree == 1024 else 1.0
    return results


LATENCY_MAILBOXES = 120
LATENCY_EVENTS_PER_REPEAT = 60
LATENCY_MAX_EVENTS = 360
LATENCY_UTILISATION = 0.25  # mean offered load as a fraction of measured capacity
LATENCY_BURST_MULTIPLIER = 2.5
LATENCY_BURST_FRACTION = 0.15
LATENCY_DIURNAL_AMPLITUDE = 0.25
LATENCY_DUPLICATE_FRACTION = 0.01
LATENCY_TRACE_SEED = 1017
LATENCY_TARGET_BATCH = 24
LATENCY_MIN_DELAY_S = 0.004
LATENCY_STATIC_DELAYS_S = (0.25, 0.10, 0.05)
LATENCY_CALIBRATION_BATCH = 8  # emails in the batched calibration flush


def run_latency(ring_degree: int, repeat: int) -> dict:
    """End-to-end email latency, static versus adaptive decrypt windows.

    A seeded bursty/diurnal trace (:func:`repro.mail.traces.generate_trace`,
    heavy-tailed mailbox volume, ~1% injected duplicates) is replayed against
    a real :class:`ProviderRuntime` under a virtual clock: the clock jumps to
    each arrival, and between arrivals it advances to the scheduler's next
    age deadline and ticks ``poll()`` — the idle-window flush.

    Service time is charged to the virtual clock through a **calibrated
    deterministic cost model**: the suite first measures, on the live
    protocol, the cost of serving one email alone and the cost of serving a
    batch, and fits ``cost(k) = c0 + k·c1`` (per-batch overhead plus
    per-email marginal cost — the decrypt-many amortization the runtime
    actually exhibits).  The trace rate is calibrated to the measured
    single-email cost, so the load level is machine-independent, and the
    replay itself — every queueing decision, every latency sample — is then
    fully deterministic given the trace seed and the scheduler policy.
    Measured wall-clock CPU per arm still feeds the throughput rows.

    Arms: one static :class:`DecryptScheduler` per delay in
    ``LATENCY_STATIC_DELAYS_S`` (shared size trigger
    ``LATENCY_TARGET_BATCH``), plus one :class:`AdaptiveDecryptScheduler`
    spanning the same delay range.  Every arm replays the identical trace and
    must serve the identical email set (duplicates rejected by the
    :class:`ReplayGuard` up front).  **Hard-fail gate**: the adaptive arm's
    p99 latency must beat the best static arm's — a fixed window either
    taxes the quiet tail (wide) or gives up batching (tight); the adaptive
    controller must dominate the whole grid.
    """
    from repro.core.runtime import AdaptiveDecryptScheduler
    from repro.mail import ReplayGuard, TraceSpec, VirtualClock, generate_trace, serve_trace

    parameters = BVParameters(ring_degree=ring_degree)
    scheme = BVScheme(parameters)
    group = generate_group(RUNTIME_DH_BITS)
    rng = np.random.default_rng(11)
    linear = LinearModel(
        weights=rng.normal(size=(SPAM_FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    setup = protocol.setup(quantized)

    # Calibrate the batch cost model cost(k) = c0 + k*c1 on the live runtime:
    # serve emails one per flush for the singleton cost, then one K-email
    # flush for the batched cost, and solve the two-point fit.
    calibration_emails = [
        {int(row): 1 for row in rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False)}
        for _ in range(LATENCY_CALIBRATION_BATCH)
    ]

    def _flush_cost(emails_per_flush: int) -> float:
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=1, max_pending_ciphertexts=10**9, max_delay_seconds=None
            )
        )
        jobs = [
            spam_job(protocol, setup, features, label=index)
            for index, features in enumerate(calibration_emails[:emails_per_flush])
        ]
        start = time.perf_counter()
        finished = runtime.serve_burst(jobs)
        elapsed = time.perf_counter() - start
        assert len(finished) == emails_per_flush
        return elapsed

    _flush_cost(1)  # warm caches off the clock
    email_cost_s = min(_flush_cost(1) for _ in range(3))  # c0 + c1
    batch_cost_s = _flush_cost(LATENCY_CALIBRATION_BATCH)  # c0 + K*c1
    cost_per_item = max(
        (batch_cost_s - email_cost_s) / (LATENCY_CALIBRATION_BATCH - 1), email_cost_s * 0.05
    )
    cost_per_batch = max(email_cost_s - cost_per_item, 0.0)

    def cost_model(size: float) -> float:
        return cost_per_batch + size * cost_per_item

    mean_rate = LATENCY_UTILISATION / email_cost_s
    effective_rate = mean_rate * (
        1.0 + LATENCY_BURST_FRACTION * (LATENCY_BURST_MULTIPLIER - 1.0)
    )
    target_events = min(LATENCY_EVENTS_PER_REPEAT * repeat, LATENCY_MAX_EVENTS)
    duration = target_events / effective_rate
    spec = TraceSpec(
        mailboxes=LATENCY_MAILBOXES,
        mean_rate_per_second=mean_rate,
        duration_seconds=duration,
        diurnal_amplitude=LATENCY_DIURNAL_AMPLITUDE,
        diurnal_period_seconds=duration / 2.0,
        burst_rate_multiplier=LATENCY_BURST_MULTIPLIER,
        burst_fraction=LATENCY_BURST_FRACTION,
        mean_burst_seconds=max(8.0 * email_cost_s, 0.5),
        duplicate_fraction=LATENCY_DUPLICATE_FRACTION,
        seed=LATENCY_TRACE_SEED,
    )
    events = generate_trace(spec)

    mailbox_features = {}

    def features_of(mailbox: str) -> dict:
        if mailbox not in mailbox_features:
            box_rng = np.random.default_rng(abs(hash(mailbox)) % 2**32)
            mailbox_features[mailbox] = {
                int(row): 1
                for row in box_rng.choice(SPAM_FEATURE_ROWS, size=EMAIL_FEATURES, replace=False)
            }
        return mailbox_features[mailbox]

    def replay(name, make_scheduler):
        # Each arm replays inside its own registry/tracer so the per-arm
        # decrypt batch-size distribution stays attributable; the spans are
        # re-recorded into the suite-level tracer under an arm-qualified
        # trace id, and the metrics fold into the suite-level registry so
        # the telemetry artifact covers every arm.
        with scoped_telemetry() as (registry, tracer):
            clock = VirtualClock()
            runtime = ProviderRuntime(scheduler=make_scheduler(clock))
            report = serve_trace(
                runtime,
                events,
                lambda event: spam_job(
                    protocol, setup, features_of(event.mailbox), label=event.sender
                ),
                clock,
                replay_guard=ReplayGuard(),
                cost_model=cost_model,
            )
            summary = report.summary()
            batch_hist = registry.histogram("decrypt_batch_ciphertexts")
            summary["p95_decrypt_batch_registry"] = (
                batch_hist.percentile(95.0) if batch_hist.count else 0.0
            )
            arm_spans = tracer.snapshot()
            arm_snapshot = registry.snapshot()
        outer_tracer = get_tracer()
        for span in arm_spans:
            outer_tracer.record(
                f"{name}/{span['trace_id']}",
                span["name"],
                span["start_seconds"],
                span["end_seconds"],
                category=span["category"],
                **span["meta"],
            )
        get_registry().merge_snapshot(arm_snapshot)
        return summary

    arms = [
        (
            f"static{int(delay * 1000)}ms",
            lambda clock, delay=delay: DecryptScheduler(
                window_bursts=10**9,
                max_pending_ciphertexts=LATENCY_TARGET_BATCH,
                max_delay_seconds=delay,
                clock=clock,
            ),
        )
        for delay in LATENCY_STATIC_DELAYS_S
    ]
    arms.append(
        (
            "adaptive",
            lambda clock: AdaptiveDecryptScheduler(
                min_delay_seconds=LATENCY_MIN_DELAY_S,
                max_delay_seconds=max(LATENCY_STATIC_DELAYS_S),
                target_batch_ciphertexts=LATENCY_TARGET_BATCH,
                clock=clock,
            ),
        )
    )

    results: dict[str, float] = {
        "latency_events": float(len(events)),
        "latency_email_cost_ms": email_cost_s * 1e3,
        "latency_batch_overhead_ms": cost_per_batch * 1e3,
        "latency_marginal_email_cost_ms": cost_per_item * 1e3,
        "latency_trace_mean_rate_per_s": mean_rate,
        "latency_trace_duration_s": duration,
    }
    summaries: dict[str, dict[str, float]] = {}
    for name, make_scheduler in arms:
        summary = summaries[name] = replay(name, make_scheduler)
        for row in ("p50", "p95", "p99", "mean"):
            results[f"latency_{name}_{row}_ms"] = summary[f"latency_{row}"] * 1e3
        results[f"latency_{name}_throughput_per_cpu_s"] = summary["throughput_per_cpu_second"]
        results[f"latency_{name}_mean_decrypt_batch"] = summary["mean_decrypt_batch"]
        results[f"latency_{name}_p95_decrypt_batch"] = summary["p95_decrypt_batch_registry"]
    served = {summary["served"] for summary in summaries.values()}
    rejected = {summary["rejected_duplicates"] for summary in summaries.values()}
    if len(served) != 1 or len(rejected) != 1:
        raise AssertionError(
            f"arms disagree on the workload: served {served}, rejected {rejected}"
        )
    results["latency_rejected_duplicates"] = rejected.pop()

    static_names = [name for name, _ in arms if name != "adaptive"]
    best_static = min(static_names, key=lambda name: summaries[name]["latency_p99"])
    adaptive_p99 = summaries["adaptive"]["latency_p99"]
    best_static_p99 = summaries[best_static]["latency_p99"]
    results["latency_best_static_arm_p99_ms"] = best_static_p99 * 1e3
    # The suite's reason to exist: adaptive windows must dominate the static
    # grid on tail latency, or the control loop is not earning its keep.
    if adaptive_p99 >= best_static_p99:
        raise AssertionError(
            f"adaptive p99 {adaptive_p99 * 1e3:.1f} ms did not beat the best static "
            f"arm ({best_static}: {best_static_p99 * 1e3:.1f} ms)"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ring-degree", type=int, default=1024)
    parser.add_argument("--repeat", type=int, default=9, help="samples per op (median reported)")
    parser.add_argument(
        "--suite",
        choices=("hotpath", "runtime", "shard", "restart", "chaos", "micro", "latency", "fabric"),
        default="hotpath",
        help=(
            "hotpath = BV micro/protocol ops; runtime = serving-loop throughput; "
            "shard = sharded serving stack vs the single-loop drive; "
            "restart = crash-recovery latency, snapshot resume vs recompute; "
            "chaos = goodput under seeded fault cocktails, reliable vs raw; "
            "micro = batched-fabrication scaling curves (decrypt-many, blinding); "
            "latency = p50/p95/p99 email latency on a bursty trace, static vs adaptive windows; "
            "fabric = localhost-TCP shard fabric vs in-box sharded, with a live mid-stream migration"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output JSON path (default benchmarks/BENCH_<suite>_n<degree>.json)",
    )
    args = parser.parse_args()
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")
    stem = {
        "hotpath": "bv_hotpath",
        "runtime": "runtime",
        "shard": "shard",
        "restart": "restart",
        "chaos": "chaos",
        "micro": "micro",
        "latency": "latency",
        "fabric": "fabric",
    }[args.suite]
    output = args.output or Path(__file__).parent / f"BENCH_{stem}_n{args.ring_degree}.json"

    if args.suite == "hotpath":
        results = run(args.ring_degree, args.repeat)
    elif args.suite == "runtime":
        results = run_runtime(args.ring_degree, args.repeat)
    elif args.suite == "restart":
        results = run_restart(args.ring_degree, args.repeat)
    elif args.suite == "chaos":
        results = run_chaos(args.ring_degree, args.repeat)
    elif args.suite == "micro":
        results = run_micro(args.ring_degree, args.repeat)
    elif args.suite == "latency":
        results = run_latency(args.ring_degree, args.repeat)
    elif args.suite == "fabric":
        results = run_fabric(args.ring_degree, args.repeat)
    else:
        results = run_shard(args.ring_degree, args.repeat)
    payload = {
        "meta": {
            "harness": "benchmarks/regress.py",
            "suite": args.suite,
            "ring_degree": args.ring_degree,
            "repeat": args.repeat,
            "spam_feature_rows": SPAM_FEATURE_ROWS,
            "email_features": EMAIL_FEATURES,
            "topic_categories": TOPIC_CATEGORIES,
            "topic_candidates": TOPIC_CANDIDATES,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        },
        "results": {name: round(value, 4) for name, value in results.items()},
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")

    # Every suite leaves its flight recording beside the bench JSON:
    # <output>.telemetry.{prom,metrics.json,trace.json}.
    telemetry_prefix = output.with_suffix("").as_posix() + ".telemetry"
    artifact_paths = write_artifacts(
        telemetry_prefix, get_registry().snapshot(), get_tracer().snapshot()
    )

    width = max(len(name) for name in results)
    print(f"{args.suite} suite (ring degree {args.ring_degree}, median of {args.repeat}):")
    for name, value in results.items():
        unit = " ms" if args.suite == "hotpath" else ""
        print(f"  {name.ljust(width)}  {value:10.3f}{unit}")
    print(f"wrote {output}")
    for path in artifact_paths:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
