"""Fig. 10 — provider-side CPU time per email for topic extraction.

Sweeps the number of categories B and the candidate count B' and compares the
provider CPU of NoPriv, Baseline and Pretzel.  The paper's claims to
reproduce: without decomposition (B'=B) the private arms are orders of
magnitude above NoPriv; with decomposition (B'=10 or 20) Pretzel's provider
CPU falls to within a small factor of NoPriv.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_email_features, make_quantized_model, print_table
from repro.classify.model import LinearModel
from repro.twopc.noprv import NoPrivClassifier
from repro.twopc.topics import TopicExtractionProtocol

MODEL_FEATURES = 1_000
CATEGORY_COUNTS = [16, 64]
CANDIDATES = [None, 20, 10, 5]   # None = B' = B (no decomposition); 20/10 match Fig. 10


@pytest.fixture(scope="module")
def setups(bv_scheme_small, dh_group):
    result = {}
    for categories in CATEGORY_COUNTS:
        model = make_quantized_model(MODEL_FEATURES, categories, seed=categories)
        protocol = TopicExtractionProtocol(bv_scheme_small, dh_group)
        result[categories] = (protocol, protocol.setup(model), model)
    return result


@pytest.mark.parametrize("categories", CATEGORY_COUNTS)
@pytest.mark.parametrize("candidates", CANDIDATES)
def test_fig10_pretzel_provider_cpu(benchmark, setups, categories, candidates):
    protocol, setup, model = setups[categories]
    features = make_email_features(MODEL_FEATURES, 60, boolean=False)
    if candidates is not None and candidates > categories:
        pytest.skip(f"B'={candidates} exceeds B={categories}; covered by the B'=B arm")
    candidate_list = None if candidates is None else list(range(candidates))
    result = benchmark.pedantic(
        protocol.extract_topic, args=(setup, features), kwargs={"candidate_topics": candidate_list},
        rounds=1, iterations=1,
    )
    label = "B'=B" if candidates is None else f"B'={candidates}"
    print_table(
        f"Fig. 10 — topic extraction, B={categories}, {label}",
        ["arm", "provider_ms", "client_ms", "network_KB", "yao_AND_gates"],
        [[
            "pretzel",
            f"{result.provider_seconds*1e3:.2f}",
            f"{result.client_seconds*1e3:.2f}",
            f"{result.network_bytes/1024:.1f}",
            result.yao_and_gates,
        ]],
    )


def test_fig10_decomposition_shape(benchmark, setups):
    """Decomposed classification cuts provider CPU by a large factor (the figure's point)."""
    protocol, setup, model = setups[CATEGORY_COUNTS[-1]]
    features = make_email_features(MODEL_FEATURES, 60, boolean=False)
    full = protocol.extract_topic(setup, features, candidate_topics=None)
    pruned = benchmark.pedantic(
        protocol.extract_topic, args=(setup, features), kwargs={"candidate_topics": list(range(10))},
        rounds=1, iterations=1,
    )
    rng = np.random.default_rng(0)
    noprv = NoPrivClassifier(
        LinearModel(
            weights=rng.normal(size=(MODEL_FEATURES, CATEGORY_COUNTS[-1])),
            biases=np.zeros(CATEGORY_COUNTS[-1]),
            category_names=[f"c{i}" for i in range(CATEGORY_COUNTS[-1])],
        )
    )
    noprv_seconds = noprv.classify(features).provider_seconds
    print_table(
        f"Fig. 10 — provider CPU per email (ms), B={CATEGORY_COUNTS[-1]}",
        ["arm", "provider_ms"],
        [
            ["noprv", f"{noprv_seconds*1e3:.3f}"],
            ["pretzel (B'=B)", f"{full.provider_seconds*1e3:.3f}"],
            ["pretzel (B'=10)", f"{pruned.provider_seconds*1e3:.3f}"],
        ],
    )
    assert pruned.provider_seconds < full.provider_seconds
