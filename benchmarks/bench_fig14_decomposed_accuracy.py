"""Fig. 14 — impact of decomposed classification on candidate recall.

Trains the client's public candidate model on {1, 2, 5, 10}% of the training
data and measures, for B' in {5, 10, 20, 40}, the fraction of test documents
whose "true" topic (according to the full proprietary model) appears among
the B' candidates.  The paper's claim to reproduce: even tiny public models
give high candidate recall, increasing with B' and with the training
fraction.
"""

import pytest

from benchmarks.conftest import print_table
from repro.classify.metrics import candidate_recall
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.datasets import prepare_classification_data, rcv1_like
from repro.utils.rand import DeterministicRandom

FRACTIONS = [0.02, 0.05, 0.10, 0.25]
CANDIDATE_COUNTS = [5, 10, 20, 40]


@pytest.fixture(scope="module")
def rcv1_data():
    return prepare_classification_data(rcv1_like(scale=0.4, num_topics=40), max_features=3000)


def _public_model(data, fraction, seed=17):
    rng = DeterministicRandom(seed, label=f"fig14-{fraction}")
    indices = list(range(len(data.train_vectors)))
    rng.shuffle(indices)
    subset = indices[: max(data.num_categories, int(fraction * len(indices)))]
    present = {data.train_labels[i] for i in subset}
    for index in indices:
        if len(present) == data.num_categories:
            break
        if data.train_labels[index] not in present:
            subset.append(index)
            present.add(data.train_labels[index])
    classifier = MultinomialNaiveBayes(num_features=data.num_features)
    classifier.fit([data.train_vectors[i] for i in subset], [data.train_labels[i] for i in subset])
    return classifier.to_linear_model()


def test_fig14_decomposed_classification_recall(benchmark, rcv1_data):
    data = rcv1_data
    proprietary = (
        MultinomialNaiveBayes(num_features=data.num_features)
        .fit(data.train_vectors, data.train_labels)
        .to_linear_model()
    )
    # "True category according to a classifier trained on the entire training
    # dataset" — exactly how the paper defines the Fig. 14 ground truth.
    truth = [proprietary.predict(vector) for vector in data.test_vectors]
    table = {}

    def sweep():
        for fraction in FRACTIONS:
            public = _public_model(data, fraction)
            for count in CANDIDATE_COUNTS:
                candidates = [public.top_categories(vector, count) for vector in data.test_vectors]
                table[(fraction, count)] = candidate_recall(candidates, truth)
        return table

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for count in CANDIDATE_COUNTS:
        rows.append(
            [f"B'={count}"] + [f"{table[(fraction, count)]*100:.1f}" for fraction in FRACTIONS]
        )
    print_table(
        "Fig. 14 — candidate recall (%) vs public-model training fraction",
        ["", *(f"{int(fraction*100)}% data" for fraction in FRACTIONS)],
        rows,
    )
    # Paper shapes: recall increases with B' and with the training fraction,
    # and is high (>90%) for B'=40 even with small training fractions.
    for fraction in FRACTIONS:
        recalls = [table[(fraction, count)] for count in CANDIDATE_COUNTS]
        assert recalls == sorted(recalls)
    assert table[(FRACTIONS[-1], 40)] > 0.9
