"""Fig. 9 — spam-filtering accuracy, precision and recall.

For each spam corpus analogue (Ling-spam, Enron, Gmail) and each classifier
Pretzel supports (GR-NB, binary LR, two-class SVM, plus the original GR
combining rule), report accuracy / precision / recall.  The paper's claim to
reproduce: all classifiers sit in the high-90s and the linear GR-NB matches
the original GR rule closely.
"""

import pytest

from benchmarks.conftest import print_table
from repro.classify.logistic import BinaryLogisticRegression
from repro.classify.metrics import accuracy, precision_recall
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.classify.svm import LinearSVM
from repro.datasets import enron_like, gmail_like, lingspam_like, prepare_classification_data

CORPORA = {
    "lingspam-like": lingspam_like,
    "enron-like": enron_like,
    "gmail-like": gmail_like,
}


def _evaluate_corpus(factory):
    data = prepare_classification_data(factory(scale=0.4), boolean=True, max_features=2500)
    train_labels = [1 if label == 1 else 0 for label in data.train_labels]
    test_labels = [1 if label == 1 else 0 for label in data.test_labels]
    rows = []

    grnb = GrahamRobinsonNaiveBayes(num_features=data.num_features).fit(data.train_vectors, train_labels)
    predictions = [int(grnb.predict_is_spam(v)) for v in data.test_vectors]
    rows.append(("GR-NB", predictions))
    rows.append(("GR", [int(grnb.predict_is_spam_original(v)) for v in data.test_vectors]))

    lr = BinaryLogisticRegression(num_features=data.num_features, epochs=5).fit(data.train_vectors, train_labels)
    rows.append(("LR", [int(lr.predict_is_spam(v)) for v in data.test_vectors]))

    svm = LinearSVM(num_features=data.num_features, epochs=5).fit(data.train_vectors, train_labels)
    rows.append(("SVM", [int(svm.predict_is_spam(v)) for v in data.test_vectors]))

    table = []
    results = {}
    for name, predictions in rows:
        acc = accuracy(predictions, test_labels)
        precision, recall = precision_recall(predictions, test_labels)
        table.append([name, f"{acc*100:.1f}", f"{precision*100:.1f}", f"{recall*100:.1f}"])
        results[name] = acc
    return table, results


@pytest.mark.parametrize("corpus_name", list(CORPORA))
def test_fig09_spam_accuracy(benchmark, corpus_name):
    table, results = benchmark.pedantic(_evaluate_corpus, args=(CORPORA[corpus_name],), rounds=1, iterations=1)
    print_table(
        f"Fig. 9 — spam accuracy on {corpus_name}",
        ["classifier", "accuracy %", "precision %", "recall %"],
        table,
    )
    # Paper shape: every classifier is well above 90% and GR ≈ GR-NB.
    assert all(acc > 0.9 for acc in results.values())
    assert abs(results["GR-NB"] - results["GR"]) < 0.08
