"""Fig. 15 — client-side keyword-search index: size, query time, update time.

Builds the client-side inverted index over each corpus analogue and reports
the index size, the per-keyword query latency and the per-email update
latency — the three columns of Fig. 15.
"""

import pytest

from benchmarks.conftest import print_table
from repro.classify.features import tokenize
from repro.datasets import enron_like, lingspam_like, newsgroups20_like, reuters_like
from repro.search.index import KeywordSearchIndex

CORPORA = {
    "lingspam-like": lambda: lingspam_like(scale=0.5),
    "enron-like": lambda: enron_like(scale=0.5),
    "20news-like": lambda: newsgroups20_like(scale=0.3),
    "reuters-like": lambda: reuters_like(scale=0.3),
}


@pytest.mark.parametrize("corpus_name", list(CORPORA))
def test_fig15_index_build_and_size(benchmark, corpus_name):
    corpus = CORPORA[corpus_name]()

    def build():
        index = KeywordSearchIndex()
        for document in corpus.documents:
            index.add_document(document)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table(
        f"Fig. 15 — search index for {corpus_name}",
        ["documents", "vocabulary", "index size"],
        [[index.document_count(), index.vocabulary_size(), f"{index.size_bytes()/1024:.1f} KB"]],
    )
    assert index.document_count() == len(corpus)


@pytest.mark.parametrize("corpus_name", ["enron-like"])
def test_fig15_query_time(benchmark, corpus_name):
    corpus = CORPORA[corpus_name]()
    index = KeywordSearchIndex()
    for document in corpus.documents:
        index.add_document(document)
    keyword = tokenize(corpus.documents[0])[0]
    matches = benchmark(index.query, keyword)
    assert matches  # the keyword comes from an indexed document


@pytest.mark.parametrize("corpus_name", ["enron-like"])
def test_fig15_update_time(benchmark, corpus_name):
    corpus = CORPORA[corpus_name]()
    index = KeywordSearchIndex()
    for document in corpus.documents[:100]:
        index.add_document(document)
    new_email = corpus.documents[-1]
    counter = {"next": 10_000}

    def update():
        counter["next"] += 1
        index.add_document(new_email, document_id=counter["next"])

    benchmark(update)
    assert index.document_count() > 100
