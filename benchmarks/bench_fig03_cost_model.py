"""Fig. 3 — the analytic cost model for NoPriv / Baseline / Pretzel.

Prints the Fig. 3-style table at the paper's headline parameters (spam:
N = 5M, B = 2; topics: N = 100K, B = 2048, B' = 20) using both the paper's
microbenchmark constants and constants measured from this library's own
implementations.
"""

from repro.costmodel import MicrobenchmarkConstants, WorkloadParameters
from repro.costmodel.estimates import estimate_all, format_table


def test_fig03_cost_model_paper_constants(benchmark):
    constants = MicrobenchmarkConstants.paper_values()

    def evaluate():
        return (
            estimate_all(constants, WorkloadParameters.spam_default()),
            estimate_all(constants, WorkloadParameters.topics_default()),
        )

    spam, topics = benchmark(evaluate)
    print("\n=== Fig. 3 cost model — spam filtering (N=5M, B=2, L=692), paper constants ===")
    print(format_table(spam))
    print("\n=== Fig. 3 cost model — topic extraction (N=100K, B=2048, B'=20), paper constants ===")
    print(format_table(topics))
    # Sanity: the headline claims of §6 must hold in the model.
    baseline_spam = next(e for e in spam if e.arm == "baseline")
    pretzel_spam = next(e for e in spam if e.arm == "pretzel")
    assert pretzel_spam.client_storage_bytes < baseline_spam.client_storage_bytes / 5
    baseline_topics = next(e for e in topics if e.arm == "baseline")
    pretzel_topics = next(e for e in topics if e.arm == "pretzel")
    assert pretzel_topics.email_network_bytes < baseline_topics.email_network_bytes / 10


def test_fig03_cost_model_measured_constants(benchmark):
    constants = benchmark(MicrobenchmarkConstants.measure_local, True)
    spam = estimate_all(constants, WorkloadParameters.spam_default())
    topics = estimate_all(constants, WorkloadParameters.topics_default())
    print("\n=== Fig. 3 cost model — spam filtering, constants measured on this machine ===")
    print(format_table(spam))
    print("\n=== Fig. 3 cost model — topic extraction, constants measured on this machine ===")
    print(format_table(topics))
