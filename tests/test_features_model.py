"""Tests for feature extraction and the (quantized) linear-model representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.classify.features import FeatureExtractor, num_features_in_email, remap_sparse, tokenize
from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.exceptions import ClassifierError, ParameterError


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World! 123") == ["hello", "world", "123"]

    def test_keeps_apostrophes(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_empty_string(self):
        assert tokenize("") == []


class TestFeatureExtractor:
    @pytest.fixture(scope="class")
    def extractor(self):
        documents = ["spam spam eggs", "eggs toast coffee", "coffee coffee spam"]
        return FeatureExtractor().fit(documents)

    def test_vocabulary_built(self, extractor):
        assert extractor.num_features == 4
        assert set(extractor.vocabulary) == {"spam", "eggs", "toast", "coffee"}

    def test_transform_counts(self, extractor):
        vector = extractor.transform("spam spam coffee unknown")
        spam_index = extractor.vocabulary["spam"]
        coffee_index = extractor.vocabulary["coffee"]
        assert vector[spam_index] == 2
        assert vector[coffee_index] == 1
        assert len(vector) == 2

    def test_transform_boolean(self, extractor):
        vector = extractor.transform("spam spam", boolean=True)
        assert list(vector.values()) == [1]

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ClassifierError):
            FeatureExtractor().transform("text")

    def test_max_features_cap(self):
        extractor = FeatureExtractor(max_features=2).fit(["a a a b b c"])
        assert extractor.num_features == 2
        assert "a" in extractor.vocabulary and "b" in extractor.vocabulary

    def test_restrict_remaps_indices(self, extractor):
        keep = [extractor.vocabulary["spam"], extractor.vocabulary["coffee"]]
        restricted, remap = extractor.restrict(keep)
        assert restricted.num_features == 2
        vector = extractor.transform("spam toast coffee")
        projected = remap_sparse(vector, remap)
        assert len(projected) == 2

    def test_num_features_in_email(self, extractor):
        assert num_features_in_email(extractor.transform("spam eggs eggs")) == 2


class TestLinearModel:
    @pytest.fixture(scope="class")
    def model(self):
        weights = np.array([[1.0, 0.0], [0.0, 2.0], [0.5, 0.5]])
        return LinearModel(weights=weights, biases=np.array([0.1, 0.0]), category_names=["a", "b"])

    def test_decision_scores(self, model):
        scores = model.decision_scores({0: 2, 2: 1})
        assert scores == pytest.approx([2.6, 0.5])

    def test_predict_argmax(self, model):
        assert model.predict({1: 3}) == 1
        assert model.predict({0: 5}) == 0

    def test_top_categories_order(self, model):
        assert model.top_categories({1: 1}, 2) == [1, 0]

    def test_top_categories_clipped_to_b(self, model):
        assert len(model.top_categories({0: 1}, 10)) == 2

    def test_restrict_features(self, model):
        restricted = model.restrict_features([0, 2])
        assert restricted.num_features == 2
        assert restricted.predict({0: 1}) == model.predict({0: 1})

    def test_shape_validation(self):
        with pytest.raises(ClassifierError):
            LinearModel(weights=np.zeros((3, 2)), biases=np.zeros(3), category_names=["a", "b"])
        with pytest.raises(ClassifierError):
            LinearModel(weights=np.zeros((3, 2)), biases=np.zeros(2), category_names=["a"])

    def test_plaintext_size(self, model):
        assert model.plaintext_size_bytes() == (6 + 2) * 4


class TestQuantizedLinearModel:
    @pytest.fixture(scope="class")
    def models(self):
        rng = np.random.default_rng(5)
        weights = rng.normal(size=(50, 3))
        linear = LinearModel(weights=weights, biases=rng.normal(size=3), category_names=["x", "y", "z"])
        quantized = QuantizedLinearModel.from_linear_model(
            linear, value_bits=12, frequency_bits=4, max_features_per_email=256
        )
        return linear, quantized

    def test_matrix_shape_and_range(self, models):
        _, quantized = models
        assert quantized.matrix.shape == (51, 3)
        assert quantized.matrix.min() >= 0
        assert quantized.matrix.max() < 2**12

    def test_dot_product_bits_budget(self, models):
        _, quantized = models
        # log2(257) rounds up to 9, plus bin=12 and fin=4.
        assert quantized.dot_product_bits == 9 + 12 + 4

    def test_quantization_preserves_argmax(self, models):
        linear, quantized = models
        rng = np.random.default_rng(6)
        agreements = 0
        total = 30
        for _ in range(total):
            features = {int(rng.integers(0, 50)): int(rng.integers(1, 4)) for _ in range(8)}
            if linear.predict(features) == quantized.predict(features):
                agreements += 1
        assert agreements >= total - 2  # quantization may flip near-ties only

    def test_clip_frequency(self, models):
        _, quantized = models
        assert quantized.clip_frequency(100) == 15
        assert quantized.clip_frequency(-2) == 0

    def test_sparse_features_drop_oov(self, models):
        _, quantized = models
        pairs = quantized.sparse_features({1: 2, 999: 5})
        assert pairs == [(1, 2)]

    def test_predict_is_spam_requires_two_categories(self, models):
        _, quantized = models
        with pytest.raises(ClassifierError):
            quantized.predict_is_spam({0: 1})

    def test_invalid_quantization_parameters(self, models):
        linear, _ = models
        with pytest.raises(ParameterError):
            QuantizedLinearModel.from_linear_model(linear, value_bits=1)
        with pytest.raises(ParameterError):
            QuantizedLinearModel.from_linear_model(linear, frequency_bits=0)

    @given(st.integers(min_value=0, max_value=49), st.integers(min_value=1, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_integer_scores_match_matrix_arithmetic(self, feature, frequency):
        rng = np.random.default_rng(7)
        weights = rng.normal(size=(50, 2))
        linear = LinearModel(weights=weights, biases=np.zeros(2), category_names=["a", "b"])
        quantized = QuantizedLinearModel.from_linear_model(linear, value_bits=8, frequency_bits=4)
        scores = quantized.integer_scores({feature: frequency})
        expected = quantized.matrix[-1] + frequency * quantized.matrix[feature]
        assert list(scores) == list(expected)
