"""End-to-end integration tests: function modules and the full Pretzel system."""

import pytest

from repro.classify.metrics import accuracy
from repro.core import (
    PretzelConfig,
    PretzelSystem,
    SearchFunctionModule,
    SpamFunctionModule,
    TopicFunctionModule,
)
from repro.core.spam_module import SpamModuleOutput
from repro.core.topic_module import TopicModuleOutput
from repro.datasets import lingspam_like, newsgroups20_like, prepare_classification_data
from repro.exceptions import MailError, ParameterError


@pytest.fixture(scope="module")
def spam_data():
    return prepare_classification_data(lingspam_like(scale=0.25, seed=9), boolean=True, max_features=1200)


@pytest.fixture(scope="module")
def topic_data():
    return prepare_classification_data(newsgroups20_like(scale=0.2, seed=10), max_features=1200)


@pytest.fixture(scope="module")
def spam_module(test_config, spam_data):
    labels = [1 if label == 1 else 0 for label in spam_data.train_labels]
    return SpamFunctionModule.train(test_config, spam_data.extractor, spam_data.train_vectors, labels)


@pytest.fixture(scope="module")
def topic_module(test_config, topic_data):
    return TopicFunctionModule.train(
        test_config,
        topic_data.extractor,
        topic_data.train_vectors,
        topic_data.train_labels,
        topic_data.category_names,
    )


class TestConfig:
    def test_presets_build(self):
        assert PretzelConfig.test().ahe_scheme == "xpir-bv"
        assert PretzelConfig.baseline().ahe_scheme == "paillier"

    def test_invalid_values_rejected(self):
        with pytest.raises(ParameterError):
            PretzelConfig(ahe_scheme="rsa")
        with pytest.raises(ParameterError):
            PretzelConfig(ot_mode="magic")
        with pytest.raises(ParameterError):
            PretzelConfig(candidate_topics=0)

    def test_build_scheme_matches_selection(self, test_config):
        assert test_config.build_scheme().name == "xpir-bv"
        assert PretzelConfig.baseline().build_scheme().name == "paillier"


class TestSpamModule:
    def test_verdicts_mostly_match_ground_truth(self, spam_module, spam_data, test_config):
        from repro.mail.message import EmailMessage

        # Reconstruct raw text from the corpus by re-tokenizing test vectors is
        # not possible; instead check agreement between the secure verdict and
        # the module's own plaintext quantized model on feature vectors.
        hits = 0
        total = 6
        for vector in spam_data.test_vectors[:total]:
            secure = spam_module.protocol.classify_email(spam_module.setup, vector).is_spam
            plain = spam_module.quantized.predict_is_spam(vector)
            hits += int(secure == plain)
        assert hits == total

    def test_process_email_output_type(self, spam_module):
        from repro.mail.message import EmailMessage

        message = EmailMessage("a@x.com", "b@y.com", "hello", "w000001 w000002 w000003")
        result = spam_module.process_email(message)
        assert isinstance(result.output, SpamModuleOutput)
        assert result.network_bytes > 0
        assert result.client_seconds > 0

    def test_storage_and_setup_costs_positive(self, spam_module):
        assert spam_module.client_storage_bytes() > 0
        assert spam_module.setup_network_bytes() > 0


class TestTopicModule:
    def test_secure_extraction_matches_proprietary_model_when_candidates_cover(self, topic_module, topic_data):
        from repro.classify.model import QuantizedLinearModel

        hits = 0
        total = 5
        for vector in topic_data.test_vectors[:total]:
            candidates = topic_module.candidate_topics(vector)
            expected = topic_module.quantized.predict(vector)
            result = topic_module.protocol.extract_topic(
                topic_module.setup, vector, candidate_topics=candidates
            )
            if expected in (candidates or []):
                hits += int(result.extracted_topic == expected)
            else:
                hits += 1  # decomposition sacrificed accuracy by design; not a protocol bug
        assert hits == total

    def test_candidate_list_size_respects_config(self, topic_module, topic_data, test_config):
        candidates = topic_module.candidate_topics(topic_data.test_vectors[0])
        assert candidates is not None
        assert len(candidates) <= test_config.candidate_topics

    def test_end_to_end_topic_accuracy_reasonable(self, topic_module, topic_data):
        # The decomposed pipeline (public candidate model + proprietary model)
        # should classify synthetic newsgroups well above chance.
        predictions = []
        for vector in topic_data.test_vectors[:10]:
            candidates = topic_module.candidate_topics(vector)
            result = topic_module.protocol.extract_topic(
                topic_module.setup, vector, candidate_topics=candidates
            )
            predictions.append(result.extracted_topic)
        assert accuracy(predictions, topic_data.test_labels[:10]) > 0.5

    def test_client_storage_includes_public_model(self, topic_module):
        assert topic_module.client_storage_bytes() > topic_module.setup.client_storage_bytes()


class TestSearchModule:
    def test_indexes_and_searches(self):
        from repro.mail.message import EmailMessage

        module = SearchFunctionModule()
        first = EmailMessage("a@x.com", "b@y.com", "budget", "quarterly numbers attached")
        second = EmailMessage("a@x.com", "b@y.com", "lunch", "pizza on friday")
        module.process_email(first)
        module.process_email(second)
        matches, latency = module.search("pizza")
        assert matches == [second.message_id()]
        assert latency >= 0
        assert module.client_storage_bytes() > 0


class TestPretzelSystem:
    @pytest.fixture(scope="class")
    def system(self, test_config, spam_module, topic_module):
        system = PretzelSystem(test_config)
        system.add_user("alice@example.com")
        bob = system.add_user("bob@example.com")
        bob.attach_module(spam_module)
        bob.attach_module(topic_module)
        bob.attach_module(SearchFunctionModule())
        return system

    def test_duplicate_user_rejected(self, system):
        with pytest.raises(MailError):
            system.add_user("alice@example.com")

    def test_roundtrip_produces_all_module_outputs(self, system):
        report = system.roundtrip(
            "alice@example.com", "bob@example.com", "greetings", "w000001 w000002 w000500 w000900"
        )
        assert isinstance(report.output_of("spam-filter"), SpamModuleOutput)
        assert isinstance(report.output_of("topic-extraction"), TopicModuleOutput)
        assert report.output_of("keyword-search").indexed_documents >= 1
        assert report.total_network_bytes > 0
        assert report.total_provider_seconds > 0
        assert report.total_client_seconds > 0

    def test_opting_out_of_a_module(self, system):
        bob = system.client("bob@example.com")
        bob.detach_module("topic-extraction")
        report = system.roundtrip("alice@example.com", "bob@example.com", "s", "w000001 w000002")
        assert report.output_of("topic-extraction") is None
        assert report.output_of("spam-filter") is not None

    def test_unknown_user_rejected(self, system):
        with pytest.raises(MailError):
            system.client("nobody@example.com")
        with pytest.raises(MailError):
            system.send_email("nobody@example.com", "bob@example.com", "s", "b")


class TestBatchedServing:
    def test_drain_all_mailboxes_matches_sequential(self, test_config, spam_module):
        system = PretzelSystem(test_config)
        system.add_user("alice@example.com")
        bob = system.add_user("bob@example.com")
        bob.attach_module(spam_module)
        bodies = ["w000001 w000002", "w000500 w000900 w000002", "w000010 w000001"]
        for body in bodies:
            system.send_email("alice@example.com", "bob@example.com", "subject", body)
        assert bob.mail.pending_email_count() == len(bodies)

        reports_by_user = system.drain_all_mailboxes()
        assert set(reports_by_user) == {"bob@example.com"}
        reports = reports_by_user["bob@example.com"]
        batched = [report.output_of("spam-filter").is_spam for report in reports]
        assert len(batched) == len(bodies)
        result = reports[0].module_results["spam-filter"]
        assert result.network_bytes > 0
        assert result.network_messages > 0
        assert result.network_rounds >= 2

        # The same burst processed sequentially produces identical verdicts.
        for body in bodies:
            system.send_email("alice@example.com", "bob@example.com", "subject", body)
        sequential = [
            report.output_of("spam-filter").is_spam
            for report in system.fetch_and_process("bob@example.com")
        ]
        assert sequential == batched
        # Everything is drained: a second pass has no work.
        assert system.drain_all_mailboxes() == {}

    def test_sharded_drain_matches_in_process_drain(self, test_config, spam_module):
        system = PretzelSystem(test_config)
        system.add_user("alice@example.com")
        for address in ("bob@example.com", "carol@example.com"):
            user = system.add_user(address)
            user.attach_module(spam_module)
            user.attach_module(SearchFunctionModule())
        bodies = ["w000001 w000002", "w000500 w000900 w000002", "w000010 w000001"]
        for recipient in ("bob@example.com", "carol@example.com"):
            for body in bodies:
                system.send_email("alice@example.com", recipient, "subject", body)

        sharded = system.drain_all_mailboxes_sharded(num_shards=2, window_bursts=2)
        assert set(sharded) == {"bob@example.com", "carol@example.com"}
        for reports in sharded.values():
            assert len(reports) == len(bodies)
            for report in reports:
                spam_result = report.module_results["spam-filter"]
                assert spam_result.network_bytes > 0
                assert spam_result.network_rounds >= 2
                # The client-only search module still ran in-process.
                assert report.output_of("keyword-search").indexed_documents >= 1

        # The same burst through the in-process serving loop agrees verdict
        # for verdict (sharding moves sessions, never changes outputs).
        for body in bodies:
            system.send_email("alice@example.com", "bob@example.com", "subject", body)
        in_process = system.drain_all_mailboxes()["bob@example.com"]
        assert [report.output_of("spam-filter").is_spam for report in in_process] == [
            report.output_of("spam-filter").is_spam
            for report in sharded["bob@example.com"]
        ]
        # Everything was drained; nothing is left for another pass.
        assert system.drain_all_mailboxes_sharded(num_shards=2) == {}
