"""Shared fixtures: small-but-real crypto parameters reused across the suite.

Key generation (safe primes, ring contexts) is expensive, so the fixtures are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.core.config import PretzelConfig
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import generate_group
from repro.crypto.paillier import PaillierScheme


@pytest.fixture(scope="session")
def dh_group():
    """A small (256-bit) safe-prime group: fast, still exercises all code paths."""
    return generate_group(256)


@pytest.fixture(scope="session")
def bv_scheme():
    """XPIR-BV with a reduced ring degree (256 slots) for fast tests."""
    return BVScheme(BVParameters.test_parameters())


@pytest.fixture(scope="session")
def paillier_scheme():
    """Paillier with a small modulus for fast tests."""
    return PaillierScheme(modulus_bits=256, slot_bits=32)


@pytest.fixture(scope="session")
def paillier_keys(paillier_scheme):
    return paillier_scheme.generate_keypair()


@pytest.fixture(scope="session")
def bv_keys(bv_scheme):
    return bv_scheme.generate_keypair()


@pytest.fixture(scope="session")
def test_config(dh_group):
    """PretzelConfig.test() sharing the session DH group via the config cache."""
    from repro.core import config as config_module

    config = PretzelConfig.test()
    config_module._GROUP_CACHE[config.dh_group_bits] = dh_group
    return config


@pytest.fixture(scope="session")
def small_spam_model():
    """A small random two-category quantized model for protocol tests."""
    rng = np.random.default_rng(42)
    weights = rng.normal(size=(200, 2))
    linear = LinearModel(weights=weights, biases=np.array([0.3, -0.1]), category_names=["spam", "ham"])
    return QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=512
    )


@pytest.fixture(scope="session")
def small_topic_model():
    """A small random multi-category quantized model for protocol tests."""
    rng = np.random.default_rng(43)
    categories = 10
    weights = rng.normal(size=(200, categories))
    linear = LinearModel(
        weights=weights,
        biases=rng.normal(size=categories),
        category_names=[f"topic-{index}" for index in range(categories)],
    )
    return QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=512
    )
