"""Tests for the mail substrate: messages, e2e module, replay guard, delivery."""

import pytest

from repro.exceptions import IntegrityError, MailError, ReplayError, SignatureError
from repro.mail.e2e import E2EIdentity, E2EModule
from repro.mail.client import MailClient
from repro.mail.message import EmailMessage, EncryptedEmail
from repro.mail.provider import MailProvider
from repro.mail.replay import ReplayGuard


@pytest.fixture(scope="module")
def e2e(dh_group):
    return E2EModule(dh_group)


@pytest.fixture(scope="module")
def alice(dh_group):
    return E2EIdentity.generate("alice@example.com", dh_group)


@pytest.fixture(scope="module")
def bob(dh_group):
    return E2EIdentity.generate("bob@example.com", dh_group)


class TestEmailMessage:
    def test_roundtrip_encoding(self):
        message = EmailMessage("a@x.com", "b@y.com", "subject", "body text", {"X-Test": "1"}, 7)
        assert EmailMessage.from_bytes(message.to_bytes()) == message

    def test_size_and_id_stability(self):
        message = EmailMessage("a@x.com", "b@y.com", "s", "b")
        assert message.size_bytes() == len(message.to_bytes())
        assert message.message_id() == message.message_id()

    def test_different_bodies_different_ids(self):
        a = EmailMessage("a@x.com", "b@y.com", "s", "body one")
        b = EmailMessage("a@x.com", "b@y.com", "s", "body two")
        assert a.message_id() != b.message_id()

    def test_missing_addresses_rejected(self):
        with pytest.raises(MailError):
            EmailMessage("", "b@y.com", "s", "b")

    def test_text_content_includes_subject(self):
        message = EmailMessage("a@x.com", "b@y.com", "Lunch", "tomorrow?")
        assert "Lunch" in message.text_content() and "tomorrow?" in message.text_content()


class TestE2EModule:
    def test_encrypt_decrypt_roundtrip(self, e2e, alice, bob):
        message = EmailMessage(alice.address, bob.address, "hi", "secret body")
        encrypted = e2e.encrypt_and_sign(message, alice, bob.public_bundle())
        decrypted = e2e.verify_and_decrypt(encrypted, bob, alice.public_bundle())
        assert decrypted == message

    def test_provider_never_sees_plaintext(self, e2e, alice, bob):
        message = EmailMessage(alice.address, bob.address, "hi", "very secret words")
        encrypted = e2e.encrypt_and_sign(message, alice, bob.public_bundle())
        assert b"very secret words" not in encrypted.ciphertext
        assert b"very secret words" not in encrypted.to_bytes()

    def test_tampered_ciphertext_rejected(self, e2e, alice, bob):
        message = EmailMessage(alice.address, bob.address, "hi", "body")
        encrypted = e2e.encrypt_and_sign(message, alice, bob.public_bundle())
        tampered_bytes = bytearray(encrypted.ciphertext)
        tampered_bytes[0] ^= 0xFF
        tampered = EncryptedEmail(**{**encrypted.__dict__, "ciphertext": bytes(tampered_bytes)})
        with pytest.raises(SignatureError):
            e2e.verify_and_decrypt(tampered, bob, alice.public_bundle())

    def test_wrong_recipient_cannot_decrypt(self, e2e, alice, bob, dh_group):
        eve = E2EIdentity.generate("eve@example.com", dh_group)
        message = EmailMessage(alice.address, bob.address, "hi", "body")
        encrypted = e2e.encrypt_and_sign(message, alice, bob.public_bundle())
        with pytest.raises(IntegrityError):
            e2e.verify_and_decrypt(encrypted, eve, alice.public_bundle())

    def test_forged_sender_rejected(self, e2e, alice, bob, dh_group):
        mallory = E2EIdentity.generate("mallory@example.com", dh_group)
        message = EmailMessage(alice.address, bob.address, "hi", "body")
        forged = e2e.encrypt_and_sign(message, mallory, bob.public_bundle())
        with pytest.raises(SignatureError):
            e2e.verify_and_decrypt(forged, bob, alice.public_bundle())

    def test_wire_roundtrip_of_encrypted_email(self, e2e, alice, bob):
        message = EmailMessage(alice.address, bob.address, "hi", "body")
        encrypted = e2e.encrypt_and_sign(message, alice, bob.public_bundle())
        assert EncryptedEmail.from_bytes(encrypted.to_bytes()) == encrypted


class TestReplayGuard:
    def test_accepts_fresh_sequences(self):
        guard = ReplayGuard()
        for sequence in range(5):
            guard.check_and_record("alice", sequence)

    def test_rejects_duplicates(self):
        guard = ReplayGuard()
        guard.check_and_record("alice", 3)
        with pytest.raises(ReplayError):
            guard.check_and_record("alice", 3)

    def test_senders_are_independent(self):
        guard = ReplayGuard()
        guard.check_and_record("alice", 0)
        guard.check_and_record("bob", 0)

    def test_out_of_order_within_window_accepted(self):
        guard = ReplayGuard(window_size=10)
        guard.check_and_record("alice", 5)
        guard.check_and_record("alice", 2)

    def test_too_old_rejected(self):
        guard = ReplayGuard(window_size=4)
        guard.check_and_record("alice", 100)
        with pytest.raises(ReplayError):
            guard.check_and_record("alice", 90)

    def test_negative_sequence_rejected(self):
        with pytest.raises(ReplayError):
            ReplayGuard().check_and_record("alice", -1)

    def test_would_accept_is_non_mutating(self):
        guard = ReplayGuard()
        assert guard.would_accept("alice", 1)
        assert guard.would_accept("alice", 1)
        guard.check_and_record("alice", 1)
        assert not guard.would_accept("alice", 1)


class TestProviderAndClient:
    def test_delivery_and_fetch(self, e2e, dh_group):
        provider = MailProvider("mail.example")
        alice_id = E2EIdentity.generate("alice@example.com", dh_group)
        bob_id = E2EIdentity.generate("bob@example.com", dh_group)
        alice_client = MailClient(identity=alice_id, provider=provider, e2e=e2e)
        bob_client = MailClient(identity=bob_id, provider=provider, e2e=e2e)
        alice_client.learn_identity(bob_id.public_bundle())
        bob_client.learn_identity(alice_id.public_bundle())
        alice_client.send_new("bob@example.com", "subject", "hello bob", provider)
        messages = bob_client.fetch_and_decrypt()
        assert len(messages) == 1
        assert messages[0].body == "hello bob"
        assert provider.delivered_count == 1

    def test_replayed_email_is_dropped(self, e2e, dh_group):
        provider = MailProvider("mail.example")
        alice_id = E2EIdentity.generate("alice2@example.com", dh_group)
        bob_id = E2EIdentity.generate("bob2@example.com", dh_group)
        alice_client = MailClient(identity=alice_id, provider=provider, e2e=e2e)
        bob_client = MailClient(identity=bob_id, provider=provider, e2e=e2e)
        alice_client.learn_identity(bob_id.public_bundle())
        bob_client.learn_identity(alice_id.public_bundle())
        encrypted = alice_client.send_new("bob2@example.com", "s", "once only", provider)
        # A malicious provider replays the same ciphertext a second time.
        provider.accept_delivery(encrypted)
        messages = bob_client.fetch_and_decrypt()
        assert len(messages) == 1

    def test_unknown_recipient_rejected(self, e2e, dh_group):
        provider = MailProvider("mail.example")
        alice_id = E2EIdentity.generate("alice3@example.com", dh_group)
        alice_client = MailClient(identity=alice_id, provider=provider, e2e=e2e)
        bob_id = E2EIdentity.generate("bob3@example.com", dh_group)
        alice_client.learn_identity(bob_id.public_bundle())
        message = alice_client.compose("bob3@example.com", "s", "b")
        with pytest.raises(MailError):
            alice_client.send(message, provider)

    def test_sequence_numbers_increment_per_recipient(self, e2e, dh_group):
        provider = MailProvider("mail.example")
        alice_id = E2EIdentity.generate("alice4@example.com", dh_group)
        client = MailClient(identity=alice_id, provider=provider, e2e=e2e)
        first = client.compose("x@example.com", "s", "b")
        second = client.compose("x@example.com", "s", "b")
        other = client.compose("y@example.com", "s", "b")
        assert (first.sequence_number, second.sequence_number, other.sequence_number) == (0, 1, 0)

    def test_mailbox_incremental_fetch(self, dh_group, e2e):
        provider = MailProvider("mail.example")
        recipient = E2EIdentity.generate("r@example.com", dh_group)
        sender = E2EIdentity.generate("s@example.com", dh_group)
        recipient_client = MailClient(identity=recipient, provider=provider, e2e=e2e)
        sender_client = MailClient(identity=sender, provider=provider, e2e=e2e)
        sender_client.learn_identity(recipient.public_bundle())
        recipient_client.learn_identity(sender.public_bundle())
        sender_client.send_new("r@example.com", "1", "first", provider)
        assert len(recipient_client.fetch_and_decrypt()) == 1
        sender_client.send_new("r@example.com", "2", "second", provider)
        newly = recipient_client.fetch_and_decrypt()
        assert len(newly) == 1 and newly[0].subject == "2"
