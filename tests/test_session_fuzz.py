"""Adversarial frame *sequences* against the provider state machines.

The wire codec is fuzz-hardened (``test_wire_fuzz``); this suite attacks one
layer up: a malicious client that sends well-formed frames in hostile
*orders* — duplicated, out-of-order, replayed from another session — at the
spam/topic provider halves.  The contract under test:

* every hostile sequence either raises a :class:`~repro.exceptions.PretzelError`
  subclass (``ProtocolError``/``OTError``/``ProtocolAbort``) or leaves the
  protocol's outputs exactly what an honest run produces — never a hang, a
  non-protocol exception, or corrupted state;
* a replayed IKNP columns frame must be *rejected* (``OTError``), because
  extending the same transfer indices twice would encrypt two different
  message batches under the same pads — the classic pad-reuse leak the
  sender-side ``claim()`` ledger exists to prevent;
* frames that merely arrive early are buffered and replayed — reordering an
  honest sequence is tolerated, not punished.

The seeded sweep is marked ``fuzz`` (CI runs it in the adversarial job with a
fresh seed; reproduce failures with ``WIRE_FUZZ_SEED=<seed>``).
"""

import os
import random

import pytest

from repro.crypto.ot import OtExtensionSenderState
from repro.exceptions import OTError, PretzelError, ProtocolError
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.topics import TopicExtractionProtocol
from repro.twopc.wire import BlindedScoresFrame, ExtractedCandidatesFrame

FUZZ_SEED = int(os.environ.get("WIRE_FUZZ_SEED", "20260728"))

SPAM_FEATURES = {1: 1, 5: 1, 9: 2}
TOPIC_FEATURES = {2: 1, 3: 2, 77: 1}


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


def _drive_provider(protocol, setup, provider, frames):
    """Feed *frames* at a provider half, servicing its decrypt parks inline.

    Returns the provider's response frames.  This is the adversarial stand-in
    for the serving loop: the "client" is whatever frame list the test built.
    """
    responses = []
    for frame in frames:
        responses += provider.handle(frame)
        request = provider.decryption_request()
        if request is not None:
            slots = protocol.scheme.decrypt_slots_many(setup.keypair, request.ciphertexts)
            responses += provider.supply_decrypted(slots)
    return responses


def _honest_exchange(protocol, setup, kind, features, pool, candidates=None):
    """Run one honest session; returns (provider_bound_frames, client_session).

    The recorded frames are exactly what a hostile client could capture and
    replay; the returned client's verdict doubles as the honest baseline.
    """
    if kind == "spam":
        client = protocol.client_session(setup, features, ot_pool=pool)
        provider = protocol.provider_session(setup, ot_pool=pool)
    else:
        client = protocol.client_session(setup, features, candidates, ot_pool=pool)
        provider = protocol.provider_session(setup, ot_pool=pool)
    to_provider = list(client.start())
    recorded = []
    while to_provider:
        frame = to_provider.pop(0)
        recorded.append(frame)
        for response in _drive_provider(protocol, setup, provider, [frame]):
            if not client.finished:
                to_provider += client.handle(response)
    assert client.finished and provider.finished
    return recorded, client, provider


class TestOtPadCursorLedger:
    """Unit coverage of the sender-side claim ledger behind replay rejection."""

    def _state(self):
        return OtExtensionSenderState(s_bits=[0, 1], seed_keys=[b"\x00" * 16, b"\x01" * 16])

    def test_overlap_rejected(self):
        state = self._state()
        state.claim(0, 8)
        with pytest.raises(OTError, match="replay|overlap"):
            state.claim(4, 8)
        with pytest.raises(OTError):
            state.claim(0, 8)  # exact duplicate
        with pytest.raises(OTError):
            state.claim(7, 1)  # fully inside

    def test_disjoint_out_of_order_batches_accepted(self):
        state = self._state()
        state.claim(8, 4)   # a later allocation lands first
        state.claim(0, 8)   # the earlier one arrives second — legitimate
        state.claim(12, 2)
        assert state.next_index == 14
        assert state.claimed == [(0, 14)]  # coalesced into one range

    def test_negative_and_empty_claims(self):
        state = self._state()
        with pytest.raises(OTError):
            state.claim(-1, 4)
        state.claim(3, 0)  # empty batches reserve nothing
        assert state.claimed == []


class TestHostileSequencesSpam:
    def test_duplicate_request_rejected(self, spam_setup):
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        frames, _, _ = _honest_exchange(protocol, setup, "spam", SPAM_FEATURES, pool)
        request = next(f for f in frames if isinstance(f, BlindedScoresFrame))
        provider = protocol.provider_session(setup, ot_pool=pool)
        _drive_provider(protocol, setup, provider, [request])
        with pytest.raises(ProtocolError):
            _drive_provider(protocol, setup, provider, [request])

    def test_duplicated_ot_columns_rejected(self, spam_setup):
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        frames, _, _ = _honest_exchange(protocol, setup, "spam", SPAM_FEATURES, pool)
        provider = protocol.provider_session(setup, ot_pool=pool)
        # Duplicate every non-request frame: the first copies are buffered and
        # replayed after the decrypt; the duplicates must then be rejected —
        # either as a pad-reuse replay (OTError) or as frames after finish.
        hostile = [frames[0]] + [f for f in frames[1:] for _ in (0, 1)]
        with pytest.raises((OTError, ProtocolError)):
            _drive_provider(protocol, setup, provider, hostile)

    def test_cross_session_replay_rejected_by_pad_ledger(self, spam_setup):
        # Session A completes; a hostile client replays A's OT columns inside
        # session B against the same per-pair pool.  The provider's sender
        # state must refuse to extend indices it already consumed — otherwise
        # B's Yao labels would be encrypted under pads A's client knows.
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        frames_a, _, _ = _honest_exchange(protocol, setup, "spam", SPAM_FEATURES, pool)
        replayed_columns = [f for f in frames_a if not isinstance(f, BlindedScoresFrame)]
        client_b = protocol.client_session(setup, {4: 1, 8: 1}, ot_pool=pool)
        request_b = [f for f in client_b.start() if isinstance(f, BlindedScoresFrame)]
        provider_b = protocol.provider_session(setup, ot_pool=pool)
        with pytest.raises(OTError, match="replay|overlap"):
            _drive_provider(
                protocol, setup, provider_b, request_b + replayed_columns
            )

    def test_early_frames_are_buffered_not_lost(self, spam_setup):
        # Reordering an honest sequence (OT columns before the request) must
        # still produce the honest verdict: that is what the buffer exists for.
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        client = protocol.client_session(setup, SPAM_FEATURES, ot_pool=pool)
        provider = protocol.provider_session(setup, ot_pool=pool)
        opening = client.start()
        reordered = [f for f in opening if not isinstance(f, BlindedScoresFrame)] + [
            f for f in opening if isinstance(f, BlindedScoresFrame)
        ]
        to_client = _drive_provider(protocol, setup, provider, reordered)
        while to_client and not client.finished:
            follow_ups = []
            for frame in to_client:
                follow_ups += client.handle(frame)
            to_client = _drive_provider(protocol, setup, provider, follow_ups)
        assert client.finished and client.is_spam is not None

    def test_frames_after_finish_rejected(self, spam_setup):
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        frames, _, provider = _honest_exchange(protocol, setup, "spam", SPAM_FEATURES, pool)
        with pytest.raises(ProtocolError):
            provider.handle(frames[-1])


class TestHostileSequencesTopics:
    def test_duplicate_request_rejected(self, topic_setup):
        protocol, setup = topic_setup
        pool = protocol.make_ot_pool(setup)
        frames, _, _ = _honest_exchange(
            protocol, setup, "topics", TOPIC_FEATURES, pool, candidates=[0, 1, 2]
        )
        request = next(f for f in frames if isinstance(f, ExtractedCandidatesFrame))
        provider = protocol.provider_session(setup, ot_pool=pool)
        _drive_provider(protocol, setup, provider, [request])
        with pytest.raises(ProtocolError):
            _drive_provider(protocol, setup, provider, [request])

    def test_cross_session_replay_never_leaks_the_argmax(self, topic_setup):
        # Replaying session A's post-request frames into session B: every
        # outcome must be an error — the provider must never finish B's
        # protocol from A's frames (its argmax would then be attacker-steered).
        protocol, setup = topic_setup
        pool = protocol.make_ot_pool(setup)
        frames_a, _, _ = _honest_exchange(
            protocol, setup, "topics", TOPIC_FEATURES, pool, candidates=[0, 1, 2]
        )
        client_b = protocol.client_session(setup, {9: 1}, [0, 1, 2], ot_pool=pool)
        request_b = [
            f for f in client_b.start() if isinstance(f, ExtractedCandidatesFrame)
        ]
        provider_b = protocol.provider_session(setup, ot_pool=pool)
        replayed = [f for f in frames_a if not isinstance(f, ExtractedCandidatesFrame)]
        with pytest.raises(PretzelError):
            _drive_provider(protocol, setup, provider_b, request_b + replayed)
        assert provider_b.extracted_topic is None


@pytest.mark.fuzz
class TestSeededSequenceFuzz:
    """Seeded sweep: shuffled/duplicated/dropped honest frames, no escapes."""

    CASES = 60

    def _sequence_never_escapes(self, protocol, setup, provider, frames, context):
        try:
            _drive_provider(protocol, setup, provider, frames)
        except PretzelError:
            return  # rejection is a correct outcome
        except Exception as error:  # noqa: BLE001 — the assertion is the point
            raise AssertionError(
                f"{context}: non-protocol escape {type(error).__name__}: {error} "
                f"(reproduce with WIRE_FUZZ_SEED={FUZZ_SEED})"
            ) from error

    def test_spam_provider_survives_hostile_orders(self, spam_setup):
        protocol, setup = spam_setup
        rng = random.Random(FUZZ_SEED)
        pool = protocol.make_ot_pool(setup)
        frames, _, _ = _honest_exchange(protocol, setup, "spam", SPAM_FEATURES, pool)
        for case in range(self.CASES):
            hostile = list(frames)
            mutation = rng.choice(("shuffle", "duplicate", "drop", "stutter"))
            if mutation == "shuffle":
                rng.shuffle(hostile)
            elif mutation == "duplicate":
                hostile.insert(
                    rng.randrange(len(hostile) + 1), hostile[rng.randrange(len(hostile))]
                )
            elif mutation == "drop":
                hostile.pop(rng.randrange(len(hostile)))
            else:
                hostile = [frame for frame in hostile for _ in (0, 1)]
            provider = protocol.provider_session(setup, ot_pool=protocol.make_ot_pool(setup))
            self._sequence_never_escapes(
                protocol, setup, provider, hostile, f"spam case {case} ({mutation})"
            )

    def test_topic_provider_survives_hostile_orders(self, topic_setup):
        protocol, setup = topic_setup
        rng = random.Random(FUZZ_SEED + 1)
        pool = protocol.make_ot_pool(setup)
        frames, _, _ = _honest_exchange(
            protocol, setup, "topics", TOPIC_FEATURES, pool, candidates=[0, 1, 2]
        )
        for case in range(self.CASES):
            hostile = list(frames)
            rng.shuffle(hostile)
            if rng.random() < 0.5 and hostile:
                hostile.insert(
                    rng.randrange(len(hostile) + 1), hostile[rng.randrange(len(hostile))]
                )
            provider = protocol.provider_session(setup, ot_pool=protocol.make_ot_pool(setup))
            self._sequence_never_escapes(
                protocol, setup, provider, hostile, f"topics case {case}"
            )
