"""Cross-host fabric tests: control plane, equivalence, recovery, migration.

The fabric's one-sentence contract: *moving a shard across a TCP boundary —
or between hosts mid-stream — changes nothing observable*.  These tests pin:

* the versioned control codec (roundtrip, foreign-version refusal, junk);
* output and deterministic-metrics equivalence of a localhost-TCP
  :class:`FabricRuntime` against the in-box :class:`ShardedRuntime` on the
  same seeded stream (and the streamed METRICS scrape that feeds it);
* SIGKILL of an agent mid-window → checkpoint restore on a *fresh process*
  with zero resubmissions and exactly-once metrics;
* live migration of open decrypt windows between agents — quiet links and
  under a 1% chaos cocktail on the control channel — with no email lost,
  duplicated, or re-executed;
* heartbeat-timeout eviction of a hung (SIGSTOPped) agent; and
* :meth:`PretzelSystem.drain_all_mailboxes_sharded` running unchanged with
  a fabric runtime as its ``runtime=``.
"""

import os
import pickle
import signal
import time

import pytest

from repro.core.runtime import ShardedRuntime, shard_of_address
from repro.exceptions import ProtocolError, WireFormatError
from repro.fabric import (
    FabricRuntime,
    launch_fabric,
    metrics_projection,
    pack_control,
    spawn_local_agent,
    unpack_control,
)
from repro.obs import scoped_telemetry
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.transport import FaultSpec
from repro.twopc.wire import CONTROL_VERSION, ControlFrame, ControlVerb, OtPublicsFrame, WireCodec

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
    {i: 1 for i in range(0, 200, 7)},
    {3: 1, 77: 1},
    {i: 1 for i in range(1, 200, 23)},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def spam_truth(small_spam_model):
    return [small_spam_model.predict_is_spam(features) for features in SPAM_EMAILS]


def _slot_addresses(num_slots: int, per_slot: int = 2) -> list[str]:
    """Deterministic addresses covering every slot of the hash partition."""
    found: dict[int, list[str]] = {slot: [] for slot in range(num_slots)}
    index = 0
    while any(len(bucket) < per_slot for bucket in found.values()):
        address = f"user{index}@example.com"
        slot = shard_of_address(address, num_slots)
        if len(found[slot]) < per_slot:
            found[slot].append(address)
        index += 1
    return [address for slot in range(num_slots) for address in found[slot]]


def _stream(addresses: list[str]) -> list[tuple[str, dict]]:
    return [
        (addresses[index % len(addresses)], features)
        for index, features in enumerate(SPAM_EMAILS)
    ]


def _served_total(snapshot: dict) -> float:
    return sum(
        entry["value"]
        for entry in snapshot["counters"]
        if entry["name"] == "emails_served_total"
    )


def _register_all(runtime, addresses, spam_setup) -> None:
    protocol, setup = spam_setup
    for address in addresses:
        runtime.register_spam(address, protocol, setup)


def _wait_until(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def _reap(agents) -> None:
    for agent in agents:
        if agent.wait(timeout=10.0) is None:
            agent.kill()
            agent.wait(timeout=10.0)


class TestControlCodec:
    def test_roundtrip_preserves_verb_and_body(self):
        body = {"seq": 7, "command": "burst", "payload": [(0, "spam", "a@x", {1: 1}, None)]}
        verb, decoded = unpack_control(pack_control(ControlVerb.COMMAND, body))
        assert verb == ControlVerb.COMMAND
        assert decoded == body

    def test_foreign_version_is_refused_before_unpickling(self):
        frame = ControlFrame(
            verb=ControlVerb.HELLO,
            version=CONTROL_VERSION + 1,
            payload=pickle.dumps({"incarnation": "deadbeef"}),
        )
        with pytest.raises(ProtocolError, match="version"):
            unpack_control(WireCodec().encode(frame))

    def test_non_control_frame_is_refused(self):
        data = WireCodec().encode(OtPublicsFrame(elements=[1, 2, 3]))
        with pytest.raises(ProtocolError, match="control"):
            unpack_control(data)

    def test_undecodable_payload_is_a_wire_error(self):
        frame = ControlFrame(
            verb=ControlVerb.REPLY, version=CONTROL_VERSION, payload=b"\x80junk\xff"
        )
        with pytest.raises(WireFormatError):
            unpack_control(WireCodec().encode(frame))


class TestMetricsProjection:
    def test_keeps_only_partition_invariant_series(self):
        snapshot = {
            "counters": [
                {"name": "emails_served_total", "labels": {}, "value": 4},
                {"name": "transport_bytes_total", "labels": {"party": "client"}, "value": 999},
                {"name": "transport_frames_total", "labels": {"party": "client"}, "value": 12},
            ],
            "histograms": [
                {
                    "name": "decrypt_batch_ciphertexts",
                    "labels": {},
                    "counts": [1, 2, 0],
                    "count": 3,
                    "sum": 9,
                },
                {
                    "name": "decrypt_age_seconds",
                    "labels": {},
                    "counts": [5],
                    "count": 5,
                    "sum": 1.23,
                },
            ],
        }
        projected = metrics_projection(snapshot)
        assert set(projected["counters"]) == {
            ("emails_served_total", ()),
            ("transport_frames_total", (("party", "client"),)),
        }
        assert set(projected["histograms"]) == {("decrypt_batch_ciphertexts", ())}

    def test_duplicate_series_accumulate(self):
        snapshot = {
            "counters": [
                {"name": "emails_served_total", "labels": {}, "value": 2},
                {"name": "emails_served_total", "labels": {}, "value": 3},
            ],
            "histograms": [],
        }
        projected = metrics_projection(snapshot)
        assert projected["counters"][("emails_served_total", ())] == 5


class TestFabricEquivalence:
    def test_fabric_matches_in_box_sharded(self, spam_setup, spam_truth):
        """Same seeded stream, both fabrics: identical verdicts, equal
        deterministic metrics — however the serving was partitioned."""
        addresses = _slot_addresses(2)
        stream = _stream(addresses)
        waves = [stream[:4], stream[4:]]

        with scoped_telemetry():
            with ShardedRuntime(num_shards=2, window_bursts=2) as sharded:
                _register_all(sharded, addresses, spam_setup)
                in_box = [
                    result.is_spam
                    for result in sharded.run_spam_stream(waves)
                ]
                in_box_metrics = sharded.aggregated_metrics()

        runtime, agents = launch_fabric(2, window_bursts=2, metrics_interval=0.05)
        try:
            _register_all(runtime, addresses, spam_setup)
            fabric = [result.is_spam for result in runtime.run_spam_stream(waves)]
            fabric_metrics = runtime.aggregated_metrics()
        finally:
            runtime.close()
            _reap(agents)

        assert fabric == in_box == spam_truth
        assert metrics_projection(fabric_metrics) == metrics_projection(in_box_metrics)
        assert _served_total(fabric_metrics) == len(SPAM_EMAILS)

    def test_metrics_stream_without_a_results_reply(self, spam_setup):
        """The streamed scrape: registrations alone never carry a snapshot,
        so anything aggregated before the first burst must have arrived via
        pushed METRICS frames on the control channel."""
        addresses = _slot_addresses(2, per_slot=1)
        runtime, agents = launch_fabric(2, metrics_interval=0.05)
        try:
            _register_all(runtime, addresses, spam_setup)
            assert _wait_until(
                lambda: runtime.aggregated_metrics()["counters"], timeout=10.0
            ), "no streamed metrics snapshot arrived"
        finally:
            runtime.close()
            _reap(agents)


class TestFabricRecovery:
    def test_sigkill_mid_window_restores_on_fresh_agent(
        self, tmp_path, spam_setup, spam_truth
    ):
        """Kill an agent with every window open; a replacement process on the
        same checkpoint directory resumes all of them — zero resubmissions,
        verdicts intact, every email counted exactly once."""
        addresses = _slot_addresses(2)
        runtime, agents = launch_fabric(
            2, checkpoint_dir=tmp_path, window_bursts=100, metrics_interval=0.05
        )
        try:
            _register_all(runtime, addresses, spam_setup)
            job_ids = runtime.submit_spam(_stream(addresses))
            assert runtime.outstanding_count() == len(SPAM_EMAILS)

            victim = 0
            os.kill(runtime.agent_pid(victim), signal.SIGKILL)
            agents[victim].wait(timeout=10.0)
            assert _wait_until(lambda: not runtime.agent_alive(victim))
            with pytest.raises(ProtocolError, match="gone|died"):
                runtime._request(victim, "stats", None)

            replacement = spawn_local_agent(shard_index=victim, checkpoint_dir=tmp_path)
            agents.append(replacement)
            resubmitted = runtime.attach_replacement(victim, replacement)
            assert resubmitted == 0

            runtime.drain()
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
            assert verdicts == spam_truth
            assert runtime.outstanding_count() == 0
            assert _served_total(runtime.aggregated_metrics()) == len(SPAM_EMAILS)
        finally:
            runtime.close()
            _reap(agents)

    def test_heartbeat_timeout_evicts_a_hung_agent(self, spam_setup):
        """A SIGSTOPped agent keeps its socket open but goes silent; only the
        liveness policy can notice — and must."""
        addresses = _slot_addresses(2, per_slot=1)
        runtime, agents = launch_fabric(
            2, heartbeat_interval=0.05, heartbeat_timeout=1.0
        )
        stopped = None
        try:
            _register_all(runtime, addresses, spam_setup)
            victim = 1
            stopped = runtime.agent_pid(victim)
            os.kill(stopped, signal.SIGSTOP)
            assert _wait_until(lambda: not runtime.agent_alive(victim), timeout=20.0)
            with pytest.raises(ProtocolError):
                runtime._request(victim, "stats", None)
            # The survivor still serves its own range.
            survivor_address = addresses[0]
            job_ids = runtime.submit_spam([(survivor_address, SPAM_EMAILS[0])])
            runtime.drain()
            assert runtime.take_result(job_ids[0]) is not None
        finally:
            if stopped is not None:
                try:
                    os.kill(stopped, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            runtime.close()
            for agent in agents:
                agent.kill()
                agent.wait(timeout=10.0)


class TestFabricMigration:
    def _run_migration(self, spam_setup, spam_truth, fault_spec=None):
        addresses = _slot_addresses(2)
        runtime, agents = launch_fabric(
            2, window_bursts=100, metrics_interval=0.05, fault_spec=fault_spec
        )
        try:
            _register_all(runtime, addresses, spam_setup)
            stream = _stream(addresses)
            job_ids = runtime.submit_spam(stream[:4])
            assert runtime.outstanding_count() == 4  # windows held open

            spare = spawn_local_agent(shard_index=2)
            agents.append(spare)
            target = runtime.attach_agent(spare)
            source = runtime.slot_owners()[0]
            moved = [
                slot for slot, owner in enumerate(runtime.slot_owners())
                if owner == source
            ]
            resubmitted = runtime.migrate_agent(source, target)
            assert resubmitted == 0
            assert all(runtime.slot_owners()[slot] == target for slot in moved)
            assert not runtime.agent_alive(source)

            job_ids += runtime.submit_spam(stream[4:])
            runtime.drain()
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
            assert verdicts == spam_truth
            assert runtime.outstanding_count() == 0
            # Exactly-once accounting across the handover: the quiesced
            # source's fold plus the target's series sum to one serving.
            assert _served_total(runtime.aggregated_metrics()) == len(SPAM_EMAILS)
        finally:
            runtime.close()
            _reap(agents)

    def test_live_migration_moves_open_windows(self, spam_setup, spam_truth):
        self._run_migration(spam_setup, spam_truth)

    def test_migration_survives_a_lossy_control_channel(self, spam_setup, spam_truth):
        """1% each of drop/corrupt/reorder/duplicate on every parent-side
        control frame; the reliable layer absorbs it all."""
        self._run_migration(
            spam_setup, spam_truth, fault_spec=FaultSpec.loss_cocktail(0.01, seed=1289)
        )

    def test_rebalance_moves_the_hottest_range_to_a_spare(
        self, spam_setup, spam_truth
    ):
        addresses = _slot_addresses(2)
        runtime, agents = launch_fabric(2, metrics_interval=0.05)
        try:
            _register_all(runtime, addresses, spam_setup)
            # Skew the load: every email lands on slot 0's addresses.
            hot = [addr for addr in addresses if shard_of_address(addr, 2) == 0]
            job_ids = runtime.submit_spam(
                [(hot[index % len(hot)], features) for index, features in enumerate(SPAM_EMAILS[:4])]
            )
            runtime.drain()
            for job_id in job_ids:
                runtime.take_result(job_id)

            assert runtime.rebalance() is None  # no spare attached yet
            spare = spawn_local_agent(shard_index=2)
            agents.append(spare)
            runtime.attach_agent(spare)
            moved = runtime.rebalance()
            assert moved is not None
            source, target, resubmitted = moved
            assert source == 0 and resubmitted == 0
            assert runtime.slot_owners()[0] == target

            # The moved range keeps serving, correctly, on its new host.
            job_ids = runtime.submit_spam([(hot[0], SPAM_EMAILS[0])])
            runtime.drain()
            assert runtime.take_result(job_ids[0]).is_spam == spam_truth[0]
        finally:
            runtime.close()
            _reap(agents)


class TestSystemIntegration:
    def test_drain_all_mailboxes_sharded_accepts_a_fabric(self, test_config):
        """The system-level drive loop cannot tell the fabrics apart."""
        from repro.core import PretzelSystem, SpamFunctionModule
        from repro.datasets import lingspam_like, prepare_classification_data

        data = prepare_classification_data(
            lingspam_like(scale=0.1, seed=9), boolean=True, max_features=600
        )
        labels = [1 if label == 1 else 0 for label in data.train_labels]
        module = SpamFunctionModule.train(
            test_config, data.extractor, data.train_vectors, labels
        )
        system = PretzelSystem(test_config)
        system.add_user("alice@example.com")
        for address in ("bob@example.com", "carol@example.com"):
            system.add_user(address).attach_module(module)
        bodies = ["w000001 w000002", "w000500 w000900 w000002", "w000010 w000001"]
        for recipient in ("bob@example.com", "carol@example.com"):
            for body in bodies:
                system.send_email("alice@example.com", recipient, "s", body)

        runtime, agents = launch_fabric(2)
        try:
            over_fabric = system.drain_all_mailboxes_sharded(runtime=runtime)
        finally:
            runtime.close()
            _reap(agents)
        assert set(over_fabric) == {"bob@example.com", "carol@example.com"}

        for recipient in ("bob@example.com", "carol@example.com"):
            for body in bodies:
                system.send_email("alice@example.com", recipient, "s", body)
        in_process = system.drain_all_mailboxes()
        for address in over_fabric:
            assert [
                report.output_of("spam-filter").is_spam
                for report in over_fabric[address]
            ] == [
                report.output_of("spam-filter").is_spam
                for report in in_process[address]
            ]
