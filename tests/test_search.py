"""Tests for the client-side keyword-search index (§5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SearchIndexError
from repro.search.index import KeywordSearchIndex


class TestIndexing:
    def test_add_and_query(self):
        index = KeywordSearchIndex()
        doc_a = index.add_document("meeting about budget tomorrow")
        doc_b = index.add_document("lunch tomorrow at noon")
        assert index.query("tomorrow") == sorted([doc_a, doc_b])
        assert index.query("budget") == [doc_a]
        assert index.query("nonexistent") == []

    def test_query_is_case_insensitive(self):
        index = KeywordSearchIndex()
        doc = index.add_document("Quarterly REPORT attached")
        assert index.query("report") == [doc]
        assert index.query("Report") == [doc]

    def test_duplicate_tokens_counted_once_per_document(self):
        index = KeywordSearchIndex()
        doc = index.add_document("spam spam spam")
        assert index.query("spam") == [doc]

    def test_query_all_and_any(self):
        index = KeywordSearchIndex()
        doc_a = index.add_document("alpha beta gamma")
        doc_b = index.add_document("alpha delta")
        assert index.query_all("alpha beta") == [doc_a]
        assert index.query_any("beta delta") == sorted([doc_a, doc_b])
        assert index.query_all("alpha missing") == []

    def test_multi_word_single_query_rejected(self):
        index = KeywordSearchIndex()
        index.add_document("a b c")
        with pytest.raises(SearchIndexError):
            index.query("a b")

    def test_explicit_document_ids(self):
        index = KeywordSearchIndex()
        index.add_document("first", document_id=10)
        assert index.query("first") == [10]
        with pytest.raises(SearchIndexError):
            index.add_document("again", document_id=10)

    def test_remove_document(self):
        index = KeywordSearchIndex()
        doc_a = index.add_document("shared word here")
        doc_b = index.add_document("shared other text")
        index.remove_document(doc_a)
        assert index.query("shared") == [doc_b]
        assert index.document_count() == 1
        with pytest.raises(SearchIndexError):
            index.remove_document(doc_a)


class TestAccounting:
    def test_size_grows_with_documents(self):
        index = KeywordSearchIndex()
        sizes = [index.size_bytes()]
        for i in range(5):
            index.add_document(f"document number {i} with words {'x' * i}")
            sizes.append(index.size_bytes())
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_counts(self):
        index = KeywordSearchIndex()
        index.add_document("one two three")
        index.add_document("two three four")
        assert index.document_count() == 2
        assert index.vocabulary_size() == 4

    @given(st.lists(st.text(alphabet="abcde ", min_size=1, max_size=30), min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_every_indexed_token_is_findable(self, documents):
        index = KeywordSearchIndex()
        ids = [index.add_document(text) for text in documents]
        for doc_id, text in zip(ids, documents):
            for token in set(text.split()):
                if token:
                    assert doc_id in index.query(token)
