"""Tests for the NTT and the RNS polynomial-ring arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ntt import NttContext, negacyclic_multiply_reference, ntt_friendly_primes
from repro.crypto.prg import Prg
from repro.crypto.ringlwe import RingContext, RingPolynomial
from repro.exceptions import ParameterError

RING_DEGREE = 64


@pytest.fixture(scope="module")
def ntt_context():
    prime = ntt_friendly_primes(1, 31, RING_DEGREE)[0]
    return NttContext(RING_DEGREE, prime)


@pytest.fixture(scope="module")
def ring_context():
    return RingContext.create(ring_degree=RING_DEGREE, prime_bits=31, prime_count=2)


class TestNttPrimes:
    def test_primes_are_distinct_and_congruent(self):
        primes = ntt_friendly_primes(2, 31, RING_DEGREE)
        assert len(set(primes)) == 2
        assert all(p % (2 * RING_DEGREE) == 1 for p in primes)

    def test_many_distinct_primes(self):
        # The old search decremented the bit size on a duplicate hit and could
        # re-find the same prime forever; asking for several primes exercises
        # the deterministic descending walk.
        for count in (3, 4, 5):
            primes = ntt_friendly_primes(count, 31, RING_DEGREE)
            assert len(primes) == count
            assert len(set(primes)) == count
            assert all(p % (2 * RING_DEGREE) == 1 for p in primes)
            assert all(p < 2**31 for p in primes)

    def test_search_is_deterministic_and_prefix_stable(self):
        five = ntt_friendly_primes(5, 31, RING_DEGREE)
        assert ntt_friendly_primes(3, 31, RING_DEGREE) == five[:3]
        assert ntt_friendly_primes(5, 31, RING_DEGREE) == five

    def test_too_large_prime_bits_rejected(self):
        with pytest.raises(ParameterError):
            ntt_friendly_primes(1, 40, RING_DEGREE)


class TestNtt:
    def test_forward_inverse_roundtrip(self, ntt_context):
        rng = np.random.default_rng(0)
        values = rng.integers(0, ntt_context.prime, RING_DEGREE)
        recovered = ntt_context.inverse(ntt_context.forward(values))
        assert np.array_equal(recovered, values % ntt_context.prime)

    def test_multiply_matches_reference(self, ntt_context):
        rng = np.random.default_rng(1)
        a = rng.integers(0, ntt_context.prime, RING_DEGREE)
        b = rng.integers(0, ntt_context.prime, RING_DEGREE)
        assert np.array_equal(
            ntt_context.multiply(a, b),
            negacyclic_multiply_reference(a, b, ntt_context.prime),
        )

    def test_multiply_by_one_is_identity(self, ntt_context):
        rng = np.random.default_rng(2)
        a = rng.integers(0, ntt_context.prime, RING_DEGREE)
        one = np.zeros(RING_DEGREE, dtype=np.int64)
        one[0] = 1
        assert np.array_equal(ntt_context.multiply(a, one), a)

    def test_x_to_the_n_is_minus_one(self, ntt_context):
        # x^(n/2) * x^(n/2) = x^n = -1 in the negacyclic ring.
        half = np.zeros(RING_DEGREE, dtype=np.int64)
        half[RING_DEGREE // 2] = 1
        product = ntt_context.multiply(half, half)
        expected = np.zeros(RING_DEGREE, dtype=np.int64)
        expected[0] = ntt_context.prime - 1
        assert np.array_equal(product, expected)

    def test_wrong_length_rejected(self, ntt_context):
        with pytest.raises(ParameterError):
            ntt_context.forward(np.zeros(RING_DEGREE + 1, dtype=np.int64))

    @given(st.integers(min_value=0, max_value=2**31 - 2), st.integers(min_value=0, max_value=RING_DEGREE - 1))
    @settings(max_examples=20, deadline=None)
    def test_monomial_times_constant(self, ntt_context, constant, degree):
        constant %= ntt_context.prime
        a = np.zeros(RING_DEGREE, dtype=np.int64)
        a[0] = constant
        monomial = np.zeros(RING_DEGREE, dtype=np.int64)
        monomial[degree] = 1
        product = ntt_context.multiply(a, monomial)
        assert product[degree] == constant
        assert product.sum() == constant

    @given(
        degree=st.sampled_from([4, 16, 64, 256]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_multiply_matches_reference_across_degrees(self, degree, seed):
        prime = ntt_friendly_primes(1, 31, degree)[0]
        context = NttContext(degree, prime)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, prime, degree)
        b = rng.integers(0, prime, degree)
        assert np.array_equal(
            context.multiply(a, b), negacyclic_multiply_reference(a, b, prime)
        )

    @given(
        degree=st.sampled_from([4, 16, 64, 256]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_batched_forward_matches_single(self, degree, seed):
        prime = ntt_friendly_primes(1, 31, degree)[0]
        context = NttContext(degree, prime)
        rng = np.random.default_rng(seed)
        batch = rng.integers(0, prime, size=(3, degree))
        stacked = context.forward_many(batch)
        for row in range(3):
            assert np.array_equal(stacked[row], context.forward(batch[row]))
        assert np.array_equal(context.inverse_many(stacked), batch)

    def test_monomial_spectrum_matches_forward_of_one_hot(self, ntt_context):
        for exponent in (0, 1, 7, RING_DEGREE - 1):
            one_hot = np.zeros(RING_DEGREE, dtype=np.int64)
            one_hot[exponent] = 1
            assert np.array_equal(
                ntt_context.monomial_spectrum(exponent), ntt_context.forward(one_hot)
            )
        # x^(n + k) = -x^k in the negacyclic ring.
        assert np.array_equal(
            ntt_context.monomial_spectrum(RING_DEGREE + 3),
            (-ntt_context.monomial_spectrum(3)) % ntt_context.prime,
        )


class TestRingPolynomial:
    def test_add_subtract_roundtrip(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"a"))
        b = RingPolynomial.sample_uniform(ring_context, Prg(b"b"))
        recovered = a.add(b).subtract(b)
        assert np.array_equal(recovered.residues, a.residues)

    def test_negate_is_additive_inverse(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"c"))
        zero = a.add(a.negate())
        assert np.all(zero.residues == 0)

    def test_scalar_multiply_matches_repeated_add(self, ring_context):
        a = RingPolynomial.from_int_coefficients(ring_context, [1, 2, 3])
        assert np.array_equal(a.scalar_multiply(3).residues, a.add(a).add(a).residues)

    def test_monomial_multiply_shifts_coefficients(self, ring_context):
        a = RingPolynomial.from_int_coefficients(ring_context, [5, 7])
        shifted = a.monomial_multiply(3)
        coefficients = shifted.to_centered_coefficients()
        assert coefficients[3] == 5
        assert coefficients[4] == 7
        assert coefficients[0] == 0

    def test_monomial_multiply_wraps_with_negation(self, ring_context):
        a = RingPolynomial.from_int_coefficients(ring_context, [0, 9])
        shifted = a.monomial_multiply(RING_DEGREE - 1)
        coefficients = shifted.to_centered_coefficients()
        assert coefficients[0] == -9

    def test_monomial_multiply_agrees_with_full_multiply(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"d"))
        monomial = RingPolynomial.from_int_coefficients(ring_context, [0, 0, 0, 1])
        assert np.array_equal(
            a.monomial_multiply(3).residues, a.multiply(monomial).residues
        )

    def test_ternary_sampling_range(self, ring_context):
        poly = RingPolynomial.sample_ternary(ring_context, Prg(b"t"))
        coefficients = poly.to_centered_coefficients()
        assert set(coefficients) <= {-1, 0, 1}

    def test_noise_sampling_range(self, ring_context):
        poly = RingPolynomial.sample_noise(ring_context, bound=3, prg=Prg(b"n"))
        coefficients = poly.to_centered_coefficients()
        assert all(-3 <= value <= 3 for value in coefficients)

    def test_centered_reconstruction_roundtrip(self, ring_context):
        values = [0, 1, -1, 12345, -54321]
        poly = RingPolynomial.from_int_coefficients(ring_context, values)
        assert poly.to_centered_coefficients()[: len(values)] == values

    def test_serialized_size(self, ring_context):
        poly = RingPolynomial.zero(ring_context)
        expected_bits = ring_context.n * ring_context.modulus_bits
        assert poly.serialized_size_bytes() == (expected_bits + 7) // 8

    def test_too_many_coefficients_rejected(self, ring_context):
        with pytest.raises(ParameterError):
            RingPolynomial.from_int_coefficients(ring_context, [1] * (RING_DEGREE + 1))


class TestEvaluationDomain:
    """The dual coefficient/NTT-domain representation must be transparent."""

    def test_spectra_roundtrip(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-a"))
        spectra_only = RingPolynomial(ring_context, spectra=a.spectra.copy())
        assert np.array_equal(spectra_only.residues, a.residues)

    def test_needs_at_least_one_domain(self, ring_context):
        with pytest.raises(ParameterError):
            RingPolynomial(ring_context)

    def test_linear_ops_agree_across_domains(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-b"))
        b = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-c"))
        a_spec = RingPolynomial(ring_context, spectra=a.spectra.copy())
        b_spec = RingPolynomial(ring_context, spectra=b.spectra.copy())
        assert np.array_equal(a_spec.add(b_spec).residues, a.add(b).residues)
        assert np.array_equal(a_spec.subtract(b_spec).residues, a.subtract(b).residues)
        assert np.array_equal(a_spec.negate().residues, a.negate().residues)
        assert np.array_equal(
            a_spec.scalar_multiply(12345).residues, a.scalar_multiply(12345).residues
        )

    def test_monomial_multiply_agrees_across_domains(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-d"))
        a_spec = RingPolynomial(ring_context, spectra=a.spectra.copy())
        # Cover non-wrapping shifts, the x^n = -1 wrap, and the full period.
        for exponent in (0, 1, 5, RING_DEGREE - 1, RING_DEGREE, RING_DEGREE + 3, 2 * RING_DEGREE):
            assert np.array_equal(
                a_spec.monomial_multiply(exponent).residues,
                a.monomial_multiply(exponent).residues,
            ), f"exponent {exponent}"

    def test_multiply_stays_in_evaluation_domain(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-e"))
        b = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-f"))
        product = a.multiply(b)
        assert product.in_evaluation_domain
        # Spectra were cached on the operands by the multiply.
        assert a.in_evaluation_domain and b.in_evaluation_domain

    def test_copy_preserves_cached_domains(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-g"))
        a.spectra
        duplicate = a.copy()
        assert np.array_equal(duplicate.residues, a.residues)
        assert np.array_equal(duplicate.spectra, a.spectra)
        assert duplicate.residues is not a.residues

    def test_vectorised_crt_matches_scalar_reference(self, ring_context):
        a = RingPolynomial.sample_uniform(ring_context, Prg(b"ev-h"))
        q = ring_context.modulus
        half = q // 2
        expected = []
        for column in range(ring_context.n):
            value = 0
            for prime_index in range(len(ring_context.primes)):
                value += int(a.residues[prime_index, column]) * ring_context._crt_terms[prime_index]
            value %= q
            expected.append(value - q if value > half else value)
        assert a.to_centered_coefficients() == expected
