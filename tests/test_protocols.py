"""Integration tests for the spam-filtering and topic-extraction protocols."""

import pytest

from repro.exceptions import ProtocolError
from repro.twopc.noprv import NoPrivClassifier
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.topics import TopicExtractionProtocol


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group, across_row_packing=True)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


SPAM_TEST_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
    {i: 1 for i in range(0, 200, 7)},
]

TOPIC_TEST_EMAILS = [
    {2: 1, 3: 2, 77: 1},
    {150: 4, 151: 1, 10: 2},
    {i: 1 for i in range(0, 200, 11)},
]


class TestSpamProtocol:
    @pytest.mark.parametrize("features", SPAM_TEST_EMAILS)
    def test_verdict_matches_plaintext_classification(self, spam_setup, small_spam_model, features):
        protocol, setup = spam_setup
        result = protocol.classify_email(setup, features)
        assert result.is_spam == small_spam_model.predict_is_spam(features)

    def test_cost_accounting_is_populated(self, spam_setup):
        protocol, setup = spam_setup
        result = protocol.classify_email(setup, SPAM_TEST_EMAILS[0])
        assert result.provider_seconds > 0
        assert result.client_seconds > 0
        assert result.network_bytes >= setup.encrypted_model.scheme.ciphertext_size_bytes()
        assert result.yao_and_gates > 0

    def test_channel_is_drained(self, spam_setup):
        protocol, setup = spam_setup
        channel = protocol.make_channel(setup, name="spam-test")
        protocol.classify_email(setup, SPAM_TEST_EMAILS[1], channel=channel)
        assert channel.pending() == 0

    def test_network_bytes_equal_serialized_frame_lengths(self, spam_setup):
        # Acceptance: reported network_bytes is the sum of the actual
        # serialized frame lengths on the transport — no estimator anywhere.
        protocol, setup = spam_setup
        channel = protocol.make_channel(setup, name="spam-exact")
        result = protocol.classify_email(setup, SPAM_TEST_EMAILS[0], channel=channel)
        frame_log = channel.transport.frame_log
        assert result.network_bytes == sum(size for _, size in frame_log)
        assert result.network_messages == len(frame_log)
        assert result.network_rounds >= 2

    def test_client_storage_reported(self, spam_setup):
        _, setup = spam_setup
        assert setup.client_storage_bytes() == setup.encrypted_model.storage_bytes() > 0

    def test_rejects_non_binary_model(self, bv_scheme, dh_group, small_topic_model):
        protocol = SpamFilterProtocol(bv_scheme, dh_group)
        with pytest.raises(ProtocolError):
            protocol.setup(small_topic_model)

    def test_out_of_vocabulary_features_are_ignored(self, spam_setup, small_spam_model):
        protocol, setup = spam_setup
        features = {5: 1, 10_000: 3}
        result = protocol.classify_email(setup, features)
        assert result.is_spam == small_spam_model.predict_is_spam({5: 1})

    def test_paillier_baseline_agrees_with_pretzel(self, paillier_scheme, dh_group, bv_scheme, small_spam_model):
        baseline = SpamFilterProtocol(paillier_scheme, dh_group, across_row_packing=False)
        pretzel = SpamFilterProtocol(bv_scheme, dh_group, across_row_packing=True)
        baseline_setup = baseline.setup(small_spam_model)
        pretzel_setup = pretzel.setup(small_spam_model)
        features = SPAM_TEST_EMAILS[3]
        assert (
            baseline.classify_email(baseline_setup, features).is_spam
            == pretzel.classify_email(pretzel_setup, features).is_spam
        )

    def test_across_row_packing_reduces_storage(self, bv_scheme, dh_group, small_spam_model):
        pretzel = SpamFilterProtocol(bv_scheme, dh_group, across_row_packing=True)
        no_pack = SpamFilterProtocol(bv_scheme, dh_group, across_row_packing=False)
        assert (
            pretzel.setup(small_spam_model).client_storage_bytes()
            < no_pack.setup(small_spam_model).client_storage_bytes() / 10
        )


class TestTopicProtocol:
    @pytest.mark.parametrize("features", TOPIC_TEST_EMAILS)
    def test_full_candidate_set_matches_plaintext_argmax(self, topic_setup, small_topic_model, features):
        protocol, setup = topic_setup
        result = protocol.extract_topic(setup, features, candidate_topics=None)
        assert result.extracted_topic == small_topic_model.predict(features)

    @pytest.mark.parametrize("features", TOPIC_TEST_EMAILS)
    def test_decomposed_with_true_topic_in_candidates(self, topic_setup, small_topic_model, features):
        protocol, setup = topic_setup
        truth = small_topic_model.predict(features)
        candidates = sorted({truth, 0, 1, 2, 3})
        result = protocol.extract_topic(setup, features, candidate_topics=candidates)
        assert result.extracted_topic == truth
        assert result.candidates_used == len(candidates)

    def test_decomposed_without_true_topic_picks_best_candidate(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        features = TOPIC_TEST_EMAILS[0]
        scores = small_topic_model.integer_scores(features)
        truth = int(scores.argmax())
        candidates = [index for index in range(small_topic_model.num_categories) if index != truth][:4]
        result = protocol.extract_topic(setup, features, candidate_topics=candidates)
        best_candidate = max(candidates, key=lambda index: scores[index])
        assert result.extracted_topic == best_candidate

    def test_decomposition_reduces_network_and_yao(self, topic_setup):
        protocol, setup = topic_setup
        features = TOPIC_TEST_EMAILS[1]
        full = protocol.extract_topic(setup, features, candidate_topics=None)
        pruned = protocol.extract_topic(setup, features, candidate_topics=[0, 1, 2])
        assert pruned.yao_and_gates < full.yao_and_gates
        assert pruned.candidates_used < full.candidates_used

    def test_duplicate_candidates_are_deduplicated(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        features = TOPIC_TEST_EMAILS[2]
        truth = small_topic_model.predict(features)
        result = protocol.extract_topic(setup, features, candidate_topics=[truth, truth, 0, 0])
        assert result.candidates_used == 2
        assert result.extracted_topic == truth

    def test_empty_candidate_list_rejected(self, topic_setup):
        protocol, setup = topic_setup
        with pytest.raises(ProtocolError):
            protocol.extract_topic(setup, {0: 1}, candidate_topics=[])

    def test_out_of_range_candidate_rejected(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        with pytest.raises(ProtocolError):
            protocol.extract_topic(setup, {0: 1}, candidate_topics=[small_topic_model.num_categories])

    def test_paillier_cannot_do_decomposed_extraction(self, paillier_scheme, dh_group, small_topic_model):
        protocol = TopicExtractionProtocol(paillier_scheme, dh_group)
        setup = protocol.setup(small_topic_model, across_row_packing=False)
        with pytest.raises(ProtocolError):
            protocol.extract_topic(setup, {0: 1}, candidate_topics=[0, 1])

    def test_paillier_full_extraction_agrees(self, paillier_scheme, dh_group, small_topic_model):
        protocol = TopicExtractionProtocol(paillier_scheme, dh_group)
        setup = protocol.setup(small_topic_model, across_row_packing=False)
        features = TOPIC_TEST_EMAILS[0]
        result = protocol.extract_topic(setup, features, candidate_topics=None)
        assert result.extracted_topic == small_topic_model.predict(features)


class TestNoPriv:
    def test_matches_linear_model_prediction(self, small_topic_model):
        from repro.classify.model import LinearModel
        import numpy as np

        # Rebuild a float model matching the quantized one closely enough that
        # the argmax agrees on an easy input.
        weights = small_topic_model.matrix[:-1].astype(float)
        biases = small_topic_model.matrix[-1].astype(float)
        model = LinearModel(weights=weights, biases=biases, category_names=small_topic_model.category_names)
        classifier = NoPrivClassifier(model)
        features = {3: 2, 10: 1}
        result = classifier.classify(features)
        assert result.predicted_category == small_topic_model.predict(features)
        assert result.provider_seconds >= 0
        assert result.features_used == 2

    def test_is_spam_wrapper(self, small_spam_model):
        from repro.classify.model import LinearModel

        weights = small_spam_model.matrix[:-1].astype(float)
        biases = small_spam_model.matrix[-1].astype(float)
        model = LinearModel(weights=weights, biases=biases, category_names=["spam", "ham"])
        classifier = NoPrivClassifier(model)
        features = {5: 1, 7: 1}
        is_spam, seconds = classifier.classify_is_spam(features)
        assert is_spam == small_spam_model.predict_is_spam(features)
        assert seconds >= 0
