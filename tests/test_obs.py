"""Telemetry subsystem tests: registry semantics, span chains, exporters.

Four properties carry the observability layer:

* **Registry algebra** — instruments are get-or-create (binding twice
  returns the same object), snapshots are deterministic and sorted, and
  merging snapshots is associative with sum semantics — the contract the
  cross-shard aggregation in `ShardedRuntime` builds on.
* **Bounded memory** — histograms keep a capped recent-sample window and
  the span ring drops (and counts) past capacity; a long-running server
  never grows telemetry state.
* **Span chains** — one drained email produces the full
  ``enqueue → window_park → decrypt → reply`` chain (plus the enclosing
  ``email`` span) under one trace id, and a `VirtualClock` replay of the
  same seed + policy yields **byte-identical** flight recordings.
* **Exporter conformance** — Prometheus text, bundled JSON, and Chrome
  trace all render from live scrapes (including *mid-drain*, with windows
  still open) and pass the golden-schema validators CI runs.
"""

import json

import pytest

from repro.core.runtime import DecryptScheduler, ProviderRuntime, spam_job
from repro.mail.traces import TraceSpec, VirtualClock, generate_trace, serve_trace
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    empty_snapshot,
    get_registry,
    get_tracer,
    merge_snapshots,
    scoped_registry,
    scoped_telemetry,
    trace_is_sampled,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_text,
    json_text,
    prometheus_text,
    validate_chrome_trace,
    validate_snapshot,
    write_artifacts,
)
from repro.obs.metrics import DEFAULT_BUCKET_BOUNDS, RECENT_SAMPLE_CAP
from repro.twopc.spam import SpamFilterProtocol

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


def counter_value(snapshot, name):
    for entry in snapshot["counters"]:
        if entry["name"] == name:
            return entry["value"]
    raise AssertionError(f"no counter {name!r} in snapshot")


def gauge_value(snapshot, name):
    for entry in snapshot["gauges"]:
        if entry["name"] == name:
            return entry["value"]
    raise AssertionError(f"no gauge {name!r} in snapshot")


def histogram_entry(snapshot, name):
    for entry in snapshot["histograms"]:
        if entry["name"] == name:
            return entry
    raise AssertionError(f"no histogram {name!r} in snapshot")


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h_seconds") is registry.histogram("h_seconds")
        # Distinct labels are distinct series of the same name.
        assert registry.counter("a_total", party="x") is not registry.counter(
            "a_total", party="y"
        )

    def test_counter_and_gauge_arithmetic(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        counter.inc()
        counter.inc(2.5)
        gauge = registry.gauge("depth")
        gauge.set(7.0)
        gauge.inc(3.0)
        gauge.dec()
        snapshot = registry.snapshot()
        assert counter_value(snapshot, "ops_total") == 3.5
        assert gauge_value(snapshot, "depth") == 9.0

    def test_histogram_buckets_mean_percentile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds")
        for value in (0.001, 0.01, 0.1, 1.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean() == pytest.approx(0.27775)
        assert hist.percentile(0.0) == pytest.approx(0.001)
        assert hist.percentile(100.0) == pytest.approx(1.0)
        entry = histogram_entry(registry.snapshot(), "lat_seconds")
        assert sum(entry["counts"]) == 4
        assert len(entry["counts"]) == len(DEFAULT_BUCKET_BOUNDS) + 1
        assert entry["min"] == 0.001 and entry["max"] == 1.0

    def test_histogram_recent_window_is_capped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("busy_seconds")
        for index in range(RECENT_SAMPLE_CAP + 100):
            hist.observe(float(index))
        assert hist.count == RECENT_SAMPLE_CAP + 100  # exact totals survive
        assert len(hist.recent) == RECENT_SAMPLE_CAP  # raw window is bounded
        assert min(hist.recent) == 100.0  # oldest samples aged out

    def test_empty_histogram_snapshot_has_null_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("quiet_seconds")
        entry = histogram_entry(registry.snapshot(), "quiet_seconds")
        assert entry["count"] == 0
        assert entry["min"] is None and entry["max"] is None

    def test_merge_sums_counters_and_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n_total").inc(2)
        right.counter("n_total").inc(5)
        left.histogram("h").observe(0.5)
        right.histogram("h").observe(0.5)
        right.histogram("h").observe(2.0)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert counter_value(merged, "n_total") == 7
        entry = histogram_entry(merged, "h")
        assert entry["count"] == 3 and entry["sum"] == pytest.approx(3.0)

    def test_merge_is_associative_with_empty_identity(self):
        snaps = []
        for seed in range(3):
            registry = MetricsRegistry()
            registry.counter("k_total").inc(seed + 1)
            registry.histogram("h").observe(float(seed))
            snaps.append(registry.snapshot())
        left_first = merge_snapshots(merge_snapshots(snaps[0], snaps[1]), snaps[2])
        right_first = merge_snapshots(snaps[0], merge_snapshots(snaps[1], snaps[2]))
        assert left_first == right_first
        assert merge_snapshots(empty_snapshot(), snaps[0]) == merge_snapshots(snaps[0])

    def test_merge_rejects_schema_and_bound_mismatches(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="schema"):
            registry.merge_snapshot({"schema": "bogus/9"})
        registry.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        donor = MetricsRegistry()
        donor.histogram("h", bounds=(1.0, 2.0, 3.0)).observe(1.5)
        with pytest.raises(ValueError, match="bound mismatch"):
            registry.merge_snapshot(donor.snapshot())

    def test_scoped_registry_swaps_and_restores_default(self):
        outer = get_registry()
        with scoped_registry() as inner:
            assert get_registry() is inner and inner is not outer
            inner.counter("scoped_total").inc()
        assert get_registry() is outer

    def test_snapshot_is_sorted_and_validates(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.counter("a_total").inc()
        registry.counter("m_total", party="b").inc()
        registry.counter("m_total", party="a").inc()
        snapshot = registry.snapshot()
        names = [(entry["name"], tuple(sorted(entry["labels"].items()))) for entry in snapshot["counters"]]
        assert names == sorted(names)
        validate_snapshot(snapshot)


class TestSpanTracer:
    def test_record_and_snapshot(self):
        tracer = SpanTracer()
        tracer.record("email-1", "decrypt", 1.0, 2.5, ciphertexts=4)
        (span,) = tracer.snapshot()
        assert span["trace_id"] == "email-1" and span["name"] == "decrypt"
        assert span["meta"] == {"ciphertexts": 4}
        # The snapshot is a copy: mutating it never touches the ring.
        span["meta"]["ciphertexts"] = 99
        assert tracer.snapshot()[0]["meta"]["ciphertexts"] == 4

    def test_capacity_drops_oldest_and_counts(self):
        tracer = SpanTracer(capacity=3)
        for index in range(5):
            tracer.record(f"t{index}", "step", 0.0, 1.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [span["trace_id"] for span in tracer.snapshot()] == ["t2", "t3", "t4"]


class TestSpanSampling:
    def test_sampling_is_deterministic_per_trace(self):
        # The decision is a pure function of the trace id: two tracers (two
        # processes of a fabric) keep exactly the same traces.
        ids = [f"email-{index}" for index in range(200)]
        first = {tid for tid in ids if trace_is_sampled(tid, 0.25)}
        second = {tid for tid in ids if trace_is_sampled(tid, 0.25)}
        assert first == second
        assert 0 < len(first) < len(ids)  # thinned, but not degenerate

    def test_rate_edges_keep_all_or_none(self):
        assert trace_is_sampled("anything", 1.0)
        assert not trace_is_sampled("anything", 0.0)

    def test_whole_trace_shares_its_fate(self):
        tracer = SpanTracer(sample_rate=0.5)
        kept = [tid for tid in (f"e{i}" for i in range(50))
                if trace_is_sampled(tid, 0.5)][0]
        lost = [tid for tid in (f"e{i}" for i in range(50))
                if not trace_is_sampled(tid, 0.5)][0]
        for name in ("enqueue", "window_park", "decrypt", "reply"):
            tracer.record(kept, name, 0.0, 1.0)
            tracer.record(lost, name, 0.0, 1.0)
        recorded = {span["trace_id"] for span in tracer.snapshot()}
        assert recorded == {kept}  # never a ragged chain
        assert len(tracer) == 4
        assert tracer.sampled_out == 4
        assert tracer.dropped == 0  # sampling is not capacity pressure

    def test_sampled_out_resets_with_clear(self):
        tracer = SpanTracer(sample_rate=0.0)
        tracer.record("t", "step", 0.0, 1.0)
        assert tracer.sampled_out == 1 and len(tracer) == 0
        tracer.clear()
        assert tracer.sampled_out == 0

    def test_rate_is_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            SpanTracer(sample_rate=-0.1)


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", party="client").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat_seconds").observe(0.5)
        return registry

    def test_prometheus_text_format(self):
        text = prometheus_text(self._populated().snapshot())
        assert '# TYPE frames_total counter' in text
        assert 'frames_total{party="client"} 3' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text
        # Cumulative buckets: the +Inf bucket equals the total count.
        final_bucket = [line for line in text.splitlines() if '+Inf' in line][-1]
        assert final_bucket.endswith(" 1")

    def test_json_text_bundles_metrics_and_spans(self):
        tracer = SpanTracer()
        tracer.record("email-0", "email", 0.0, 1.0)
        payload = json.loads(json_text(self._populated().snapshot(), tracer.snapshot()))
        assert payload["schema"] == "repro-telemetry/1"
        assert payload["metrics"]["schema"] == "repro-metrics/1"
        assert payload["spans"][0]["trace_id"] == "email-0"

    def test_chrome_trace_lanes_and_validation(self):
        tracer = SpanTracer()
        tracer.record("email-0", "decrypt", 0.001, 0.002, ciphertexts=2)
        tracer.record("email-1", "decrypt", 0.001, 0.003)
        tracer.record("email-0", "reply", 0.002, 0.004)
        document = chrome_trace(tracer.snapshot())
        validate_chrome_trace(document)
        events = [event for event in document["traceEvents"] if event["ph"] == "X"]
        # Same trace id -> same lane; first appearance orders the lanes.
        assert [event["tid"] for event in events] == [1, 2, 1]
        assert events[0]["args"] == {"ciphertexts": 2}
        assert events[0]["ts"] == 1000 and events[0]["dur"] == 1000

    def test_validators_reject_malformed_documents(self):
        snapshot = self._populated().snapshot()
        snapshot["histograms"][0]["count"] += 1  # no longer sums to count
        with pytest.raises(ValueError, match="count"):
            validate_snapshot(snapshot)
        with pytest.raises(ValueError, match="schema"):
            validate_snapshot({"schema": "nope"})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [{"ph": "B"}]})
        with pytest.raises(ValueError, match="integer"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {
                            "name": "x",
                            "cat": "serve",
                            "ph": "X",
                            "pid": 1,
                            "tid": 1,
                            "ts": 0.5,
                            "dur": 1,
                        }
                    ]
                }
            )

    def test_write_artifacts_emits_the_trio(self, tmp_path):
        tracer = SpanTracer()
        tracer.record("email-0", "email", 0.0, 1.0)
        paths = write_artifacts(
            tmp_path / "suite.telemetry", self._populated().snapshot(), tracer.snapshot()
        )
        assert [path.name for path in paths] == [
            "suite.telemetry.prom",
            "suite.telemetry.metrics.json",
            "suite.telemetry.trace.json",
        ]
        for path in paths:
            assert path.read_text()
        validate_chrome_trace(json.loads(paths[2].read_text()))


class TestSpanChain:
    """One email end to end: the complete chain, deterministic under VirtualClock."""

    def _serve_one(self, protocol, setup):
        with scoped_telemetry() as (registry, tracer):
            clock = VirtualClock()
            runtime = ProviderRuntime(
                scheduler=DecryptScheduler(
                    window_bursts=100, max_delay_seconds=5.0, clock=clock
                )
            )
            job = spam_job(protocol, setup, SPAM_EMAILS[0], label=0)
            assert runtime.serve_burst([job]) == []  # parked in the open window
            clock.advance_to(5.0)
            finished = runtime.poll()
            assert [job.label for job in finished] == [0]
            return registry.snapshot(), tracer.snapshot()

    def test_drained_email_produces_complete_chain(self, spam_setup):
        protocol, setup = spam_setup
        _, spans = self._serve_one(protocol, setup)
        assert [span["name"] for span in spans] == [
            "enqueue",
            "window_park",
            "decrypt",
            "reply",
            "email",
        ]
        assert {span["trace_id"] for span in spans} == {"email-0"}
        by_name = {span["name"]: span for span in spans}
        assert by_name["email"]["start_seconds"] == 0.0
        assert by_name["email"]["end_seconds"] == 5.0
        assert by_name["window_park"]["start_seconds"] == 0.0
        assert by_name["window_park"]["end_seconds"] == 5.0
        assert by_name["decrypt"]["meta"]["ciphertexts"] >= 1
        validate_chrome_trace(chrome_trace(spans))

    def test_flight_recording_is_bit_identical(self, spam_setup):
        protocol, setup = spam_setup
        first_snapshot, first_spans = self._serve_one(protocol, setup)
        second_snapshot, second_spans = self._serve_one(protocol, setup)
        assert chrome_trace_text(first_spans) == chrome_trace_text(second_spans)
        assert json_text(
            TestSpanChain._drop_byte_counters(first_snapshot), first_spans
        ) == json_text(TestSpanChain._drop_byte_counters(second_snapshot), second_spans)

    def _replay_trace(self, protocol, setup):
        spec = TraceSpec(
            mailboxes=3,
            senders_per_mailbox=2,
            mean_rate_per_second=4.0,
            duration_seconds=1.5,
            diurnal_period_seconds=1.5,
            seed=11,
        )
        events = generate_trace(spec)
        assert events, "the seeded spec must produce at least one arrival"
        with scoped_telemetry() as (registry, tracer):
            clock = VirtualClock()
            runtime = ProviderRuntime(
                scheduler=DecryptScheduler(
                    window_bursts=10**9,
                    max_pending_ciphertexts=8,
                    max_delay_seconds=0.05,
                    clock=clock,
                )
            )
            serve_trace(
                runtime,
                events,
                lambda event: spam_job(
                    protocol, setup, SPAM_EMAILS[0], label=event.sender
                ),
                clock,
                cost_model=lambda size: 0.001 * size + 0.0005,
            )
            return registry.snapshot(), tracer.snapshot()

    @staticmethod
    def _drop_byte_counters(snapshot):
        # Serialized ciphertext sizes vary with encryption randomness, so the
        # transport byte counters are the one legitimately nondeterministic
        # series; everything else (frames, rounds, batches, ages, latencies)
        # must reproduce exactly.
        return dict(
            snapshot,
            counters=[
                entry
                for entry in snapshot["counters"]
                if entry["name"] != "transport_bytes_total"
            ],
        )

    def test_seeded_trace_replay_is_bit_identical(self, spam_setup):
        # The acceptance pin: same seed + same policy under VirtualClock and
        # a deterministic cost model -> byte-equal telemetry artifacts, spans
        # and metrics both.
        protocol, setup = spam_setup
        first_snapshot, first_spans = self._replay_trace(protocol, setup)
        second_snapshot, second_spans = self._replay_trace(protocol, setup)
        first_snapshot = self._drop_byte_counters(first_snapshot)
        second_snapshot = self._drop_byte_counters(second_snapshot)
        assert first_snapshot == second_snapshot
        assert chrome_trace_text(first_spans) == chrome_trace_text(second_spans)
        assert prometheus_text(first_snapshot) == prometheus_text(second_snapshot)
        # Every served email closed its chain: served count == email spans.
        email_spans = [span for span in first_spans if span["name"] == "email"]
        assert len(email_spans) == counter_value(first_snapshot, "emails_served_total")


class TestMidDrainScrape:
    """The CI obs-smoke path: scrape while decrypt windows are still open."""

    def test_mid_drain_scrape_validates_and_completes(self, spam_setup):
        protocol, setup = spam_setup
        with scoped_telemetry() as (registry, tracer):
            runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
            jobs = [
                spam_job(protocol, setup, features, label=index)
                for index, features in enumerate(SPAM_EMAILS)
            ]
            assert runtime.serve_burst(jobs) == []  # all parked mid-drain
            mid = registry.snapshot()
            validate_snapshot(mid)
            assert prometheus_text(mid)  # scrape renders while windows are open
            assert gauge_value(mid, "pending_window_ciphertexts") > 0
            assert counter_value(mid, "emails_served_total") == 0
            assert len(tracer) == 0  # spans close at finish, not admission

            finished = runtime.drain()
            assert len(finished) == len(SPAM_EMAILS)
            done = registry.snapshot()
            validate_snapshot(done)
            assert gauge_value(done, "pending_window_ciphertexts") == 0
            assert counter_value(done, "emails_served_total") == len(SPAM_EMAILS)
            batch = histogram_entry(done, "decrypt_batch_ciphertexts")
            assert batch["count"] == 1  # one window flush drained all three
            spans = tracer.snapshot()
            assert len([s for s in spans if s["name"] == "email"]) == len(SPAM_EMAILS)
            validate_chrome_trace(chrome_trace(spans))

    def test_runtime_stats_reads_the_registry(self, spam_setup):
        protocol, setup = spam_setup
        with scoped_telemetry():
            runtime = ProviderRuntime()
            runtime.serve_burst([spam_job(protocol, setup, SPAM_EMAILS[0], label=0)])
            stats = runtime.stats()
        assert stats["emails_served"] == 1
        assert stats["outstanding_jobs"] == 0
        assert stats["pending_window_ciphertexts"] == 0
        assert len(stats["decrypt_batch_sizes"]) == 1
        assert len(stats["decrypt_ages"]) >= 1
