"""Tests for number-theoretic primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import numtheory
from repro.exceptions import ParameterError


class TestEgcdInvmod:
    def test_egcd_identity(self):
        g, x, y = numtheory.egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_invmod_small(self):
        assert numtheory.invmod(3, 11) == 4

    def test_invmod_nonexistent(self):
        with pytest.raises(ParameterError):
            numtheory.invmod(6, 9)

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=50)
    def test_invmod_property(self, a, modulus):
        import math

        if math.gcd(a, modulus) != 1:
            return
        inverse = numtheory.invmod(a, modulus)
        assert (a * inverse) % modulus == 1


class TestCrt:
    def test_crt_pair_reconstructs(self):
        p, q = 97, 89
        value = 4242
        assert numtheory.crt_pair(value % p, p, value % q, q) == value

    @given(st.integers(min_value=0, max_value=97 * 89 - 1))
    @settings(max_examples=50)
    def test_crt_property(self, value):
        assert numtheory.crt_pair(value % 97, 97, value % 89, 89) == value


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7919, 104729, 2**31 - 1])
    def test_known_primes(self, prime):
        assert numtheory.is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 561, 104730, 2**32 - 1])
    def test_known_composites(self, composite):
        assert not numtheory.is_probable_prime(composite)

    def test_generate_prime_bits(self):
        prime = numtheory.generate_prime(64)
        assert prime.bit_length() == 64
        assert numtheory.is_probable_prime(prime)

    def test_generate_distinct_primes(self):
        p, q = numtheory.generate_distinct_primes(48)
        assert p != q
        assert numtheory.is_probable_prime(p) and numtheory.is_probable_prime(q)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(ParameterError):
            numtheory.generate_prime(4)


class TestSafePrimesAndGenerators:
    def test_safe_prime_structure(self):
        p, q = numtheory.generate_safe_prime(64)
        assert p == 2 * q + 1
        assert numtheory.is_probable_prime(p) and numtheory.is_probable_prime(q)

    def test_generator_has_order_q(self):
        p, q = numtheory.generate_safe_prime(64)
        g = numtheory.find_generator(p, q)
        assert pow(g, q, p) == 1
        assert g not in (1, p - 1)


class TestNttPrimes:
    def test_find_ntt_prime_congruence(self):
        prime = numtheory.find_ntt_prime(31, 2048)
        assert prime % 2048 == 1
        assert numtheory.is_probable_prime(prime)

    def test_root_of_unity_order(self):
        prime = numtheory.find_ntt_prime(31, 512)
        root = numtheory.find_primitive_root_of_unity(512, prime)
        assert pow(root, 512, prime) == 1
        assert pow(root, 256, prime) != 1

    def test_order_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            numtheory.find_ntt_prime(30, 100)


class TestMisc:
    def test_lcm(self):
        assert numtheory.lcm(4, 6) == 12

    def test_isqrt(self):
        assert numtheory.isqrt(17) == 4

    def test_isqrt_negative(self):
        with pytest.raises(ParameterError):
            numtheory.isqrt(-1)
