"""Framing property tests: byte-stream transports under adversarial splits.

TCP (and the kernel socket layer under :class:`SocketTransport`) may deliver
a frame one byte at a time, or glue the tail of one frame to the head of the
next.  These tests pin the property that framing is independent of write
splits — every frame is delivered intact and in order no matter how the byte
stream is chopped — and that a closed transport surfaces
:class:`~repro.exceptions.TransportClosedError` rather than a raw ``OSError``.
"""

import asyncio
import socket
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    ProtocolError,
    TransportClosedError,
    TransportTimeoutError,
    WireFormatError,
)
from repro.twopc.transport import (
    FRAME_LENGTH_PREFIX,
    AsyncFramedChannel,
    AsyncTcpTransport,
    FrameAssembler,
    SocketTransport,
)
from repro.twopc.wire import ClassifyResultFrame, FeaturesFrame, WireCodec


def _stream_of(frames):
    return b"".join(FRAME_LENGTH_PREFIX.pack(len(frame)) + frame for frame in frames)


def _chop(data: bytes, cuts) -> list[bytes]:
    """Split *data* at the given positions (any order, duplicates allowed)."""
    positions = sorted({cut % (len(data) + 1) for cut in cuts} | {0, len(data)})
    return [data[a:b] for a, b in zip(positions, positions[1:])]


class TestFrameAssembler:
    @given(
        st.lists(st.binary(max_size=200), max_size=8),
        st.lists(st.integers(min_value=0, max_value=10_000), max_size=32),
    )
    @settings(max_examples=200, deadline=None)
    def test_frames_survive_any_split(self, frames, cuts):
        assembler = FrameAssembler()
        out = []
        for chunk in _chop(_stream_of(frames), cuts):
            out += assembler.feed(chunk)
        assert out == frames
        assert assembler.buffered_bytes() == 0

    def test_one_byte_at_a_time(self):
        frames = [b"", b"x", b"hello world", bytes(range(256))]
        assembler = FrameAssembler()
        out = []
        for byte in _stream_of(frames):
            out += assembler.feed(bytes([byte]))
        assert out == frames

    def test_boundary_straddling_chunk(self):
        # One chunk carries the tail of frame 1 and the head of frame 2.
        stream = _stream_of([b"aaaa", b"bbbb"])
        assembler = FrameAssembler()
        first = assembler.feed(stream[:6])
        assert first == []
        rest = assembler.feed(stream[6:10]) + assembler.feed(stream[10:])
        assert rest == [b"aaaa", b"bbbb"]

    def test_one_mebibyte_frame(self):
        big = bytes(range(256)) * 4096  # 1 MiB
        assembler = FrameAssembler()
        stream = _stream_of([big])
        out = []
        for start in range(0, len(stream), 64 * 1024 - 1):  # misaligned chunks
            out += assembler.feed(stream[start : start + 64 * 1024 - 1])
        assert out == [big]

    def test_hostile_length_prefix_rejected(self):
        assembler = FrameAssembler(max_frame_bytes=1024)
        with pytest.raises(WireFormatError):
            assembler.feed(FRAME_LENGTH_PREFIX.pack(1 << 30))

    def test_zero_length_frames(self):
        assembler = FrameAssembler()
        out = assembler.feed(_stream_of([b"", b"", b"payload", b""]))
        assert out == [b"", b"", b"payload", b""]
        assert assembler.buffered_bytes() == 0

    def test_frame_exactly_at_max_frame_bytes(self):
        limit = 1024
        exactly = bytes(limit)
        assembler = FrameAssembler(max_frame_bytes=limit)
        assert assembler.feed(_stream_of([exactly])) == [exactly]

    def test_frame_one_past_max_frame_bytes(self):
        limit = 1024
        assembler = FrameAssembler(max_frame_bytes=limit)
        with pytest.raises(WireFormatError):
            assembler.feed(FRAME_LENGTH_PREFIX.pack(limit + 1))

    def test_length_prefix_split_across_five_one_byte_feeds(self):
        # The u32 prefix arrives one byte per feed; the fifth feed carries
        # the single payload byte.  No feed may deliver early or misparse.
        stream = _stream_of([b"z"])
        assert len(stream) == 5
        assembler = FrameAssembler()
        deliveries = [assembler.feed(bytes([byte])) for byte in stream]
        assert deliveries[:4] == [[], [], [], []]
        assert deliveries[4] == [b"z"]
        assert assembler.buffered_bytes() == 0


class TestSocketTransportFraming:
    def test_frame_reassembles_from_one_byte_writes(self):
        # Dribble a frame into the transport's raw socket byte by byte while
        # the receiver runs concurrently (one-byte skbs exhaust kernel socket
        # buffers fast); the frame must reassemble despite the segmentation.
        import threading

        transport = SocketTransport(timeout=10.0)
        received: list[bytes] = []
        try:
            payload = bytes(range(200))
            reader = threading.Thread(
                target=lambda: received.append(transport.receive("provider"))
            )
            reader.start()
            raw = transport._sockets["client"]
            for byte in FRAME_LENGTH_PREFIX.pack(len(payload)) + payload:
                raw.sendall(bytes([byte]))
            reader.join(timeout=10.0)
            assert received == [payload]
        finally:
            transport.close()

    def test_two_frames_in_one_write(self):
        transport = SocketTransport(timeout=10.0)
        try:
            raw = transport._sockets["client"]
            raw.sendall(_stream_of([b"first", b"second"]))
            assert transport.receive("provider") == b"first"
            assert transport.receive("provider") == b"second"
        finally:
            transport.close()

    def test_receive_after_close_raises_transport_closed(self):
        transport = SocketTransport()
        transport.close()
        with pytest.raises(TransportClosedError):
            transport.receive("client")
        with pytest.raises(TransportClosedError):
            transport.send("client", b"late")

    def test_peer_hangup_mid_frame_raises_transport_closed(self):
        transport = SocketTransport(timeout=10.0)
        try:
            raw = transport._sockets["client"]
            raw.sendall(FRAME_LENGTH_PREFIX.pack(100) + b"only-part")
            raw.shutdown(socket.SHUT_WR)
            with pytest.raises(TransportClosedError):
                transport.receive("provider")
        finally:
            transport.close()

    def test_hostile_length_prefix_rejected(self):
        transport = SocketTransport(timeout=10.0)
        try:
            transport._sockets["client"].sendall(FRAME_LENGTH_PREFIX.pack(1 << 31))
            with pytest.raises(WireFormatError):
                transport.receive("provider")
        finally:
            transport.close()


class TestReceiveTimeouts:
    """The optional receive deadline: silent peers raise instead of hanging."""

    def test_socket_receive_timeout_raises(self):
        transport = SocketTransport(timeout=10.0)
        try:
            with pytest.raises(TransportTimeoutError):
                transport.receive("provider", timeout_seconds=0.05)
        finally:
            transport.close()

    def test_socket_timeout_is_a_protocol_error(self):
        transport = SocketTransport(timeout=10.0)
        try:
            with pytest.raises(ProtocolError):  # subclass contract
                transport.receive("provider", timeout_seconds=0.05)
        finally:
            transport.close()

    def test_socket_usable_after_timeout(self):
        # The per-call deadline must not poison the socket's default timeout.
        transport = SocketTransport(timeout=10.0)
        try:
            with pytest.raises(TransportTimeoutError):
                transport.receive("provider", timeout_seconds=0.05)
            transport.send("client", b"after the silence")
            assert transport.receive("provider") == b"after the silence"
        finally:
            transport.close()

    def test_async_receive_timeout_raises(self):
        async def scenario():
            server, provider, client = await _tcp_pair()()
            try:
                with pytest.raises(TransportTimeoutError):
                    await provider.receive("provider", timeout_seconds=0.05)
                # Still usable afterwards.
                await client.send("client", b"late but fine")
                assert await provider.receive("provider") == b"late but fine"
            finally:
                await client.aclose()
                await provider.aclose()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())


def _tcp_pair(**kwargs):
    """A connected (server_transport, client_transport) pair on localhost."""

    async def build():
        accepted = asyncio.get_running_loop().create_future()

        async def on_connect(reader, writer):
            accepted.set_result(
                AsyncTcpTransport(reader, writer, local_party="provider", name="tcp-test")
            )
            await asyncio.Event().wait()  # keep the connection open

        server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = await AsyncTcpTransport.connect("127.0.0.1", port, **kwargs)
        return server, await accepted, client

    return build


class TestAsyncTcpTransport:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_roundtrip_and_accounting(self):
        async def scenario():
            server, provider, client = await _tcp_pair()()
            try:
                await client.send("client", b"hello")
                assert await provider.receive("provider") == b"hello"
                await provider.send("provider", b"world!")
                assert await client.receive("client") == b"world!"
                # Each endpoint sees both directions in its ledger.
                assert client.bytes_by_sender == {"client": 5, "provider": 6}
                assert provider.bytes_by_sender == {"client": 5, "provider": 6}
                assert client.rounds() == provider.rounds() == 2
            finally:
                await client.aclose()
                await provider.aclose()
                server.close()
                await server.wait_closed()

        self._run(scenario())

    def test_frames_survive_one_byte_writes(self):
        async def scenario():
            accepted = asyncio.get_running_loop().create_future()

            async def on_connect(reader, writer):
                accepted.set_result(
                    AsyncTcpTransport(reader, writer, local_party="provider")
                )
                await asyncio.Event().wait()

            server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            # A raw writer that dribbles the frame one byte at a time.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            provider = await accepted
            try:
                payload = bytes(range(256)) * 3
                for byte in FRAME_LENGTH_PREFIX.pack(len(payload)) + payload:
                    writer.write(bytes([byte]))
                    await writer.drain()
                assert await provider.receive("provider") == payload
            finally:
                writer.close()
                await provider.aclose()
                server.close()
                await server.wait_closed()

        self._run(scenario())

    def test_one_mebibyte_frame(self):
        async def scenario():
            server, provider, client = await _tcp_pair()()
            big = bytes(range(256)) * 4096  # 1 MiB
            try:
                send = asyncio.create_task(client.send("client", big))
                received = await provider.receive("provider")
                await send
                assert received == big
                assert provider.bytes_by_sender["client"] == len(big)
            finally:
                await client.aclose()
                await provider.aclose()
                server.close()
                await server.wait_closed()

        self._run(scenario())

    def test_receive_on_closed_endpoint_raises_transport_closed(self):
        async def scenario():
            server, provider, client = await _tcp_pair()()
            try:
                await client.aclose()
                with pytest.raises(TransportClosedError):
                    await client.receive("client")
                with pytest.raises(TransportClosedError):
                    await client.send("client", b"late")
                # The peer sees the hangup as a closed transport, not OSError.
                with pytest.raises(TransportClosedError):
                    await provider.receive("provider")
            finally:
                await provider.aclose()
                server.close()
                await server.wait_closed()

        self._run(scenario())

    def test_remote_party_cannot_use_local_endpoint(self):
        async def scenario():
            server, provider, client = await _tcp_pair()()
            try:
                with pytest.raises(ProtocolError):
                    await client.send("provider", b"spoof")
                with pytest.raises(ProtocolError):
                    await provider.receive("client")
            finally:
                await client.aclose()
                await provider.aclose()
                server.close()
                await server.wait_closed()

        self._run(scenario())

    def test_typed_frames_over_async_channel(self):
        async def scenario():
            server, provider, client = await _tcp_pair()()
            codec = WireCodec()
            client_channel = AsyncFramedChannel(client, codec)
            provider_channel = AsyncFramedChannel(provider, codec)
            try:
                sent = FeaturesFrame(((1, 2), (9, 1)))
                size = await client_channel.send("client", sent)
                assert size == len(codec.encode(sent))
                assert await provider_channel.receive("provider") == sent
                await provider_channel.send("provider", ClassifyResultFrame(3))
                assert await client_channel.receive("client") == ClassifyResultFrame(3)
                assert client_channel.total_bytes() == provider_channel.total_bytes()
            finally:
                await client_channel.aclose()
                await provider_channel.aclose()
                server.close()
                await server.wait_closed()

        self._run(scenario())
