"""Unit tests for the ack/retransmit layer (:mod:`repro.twopc.reliable`).

Chaos runs over full protocols live in ``test_chaos.py``; these tests pin the
reliability mechanics in isolation — header codec, CRC verification, dedup,
in-order reassembly, retransmit-on-timeout, and the give-up bound.
"""

import pytest

from repro.exceptions import (
    ProtocolError,
    ReliabilityError,
    TransportTimeoutError,
    WireFormatError,
)
from repro.twopc.reliable import (
    RELIABLE_HEADER,
    TYPE_ACK,
    TYPE_DATA,
    ReliableChannel,
    decode_reliable,
    encode_reliable,
)
from repro.twopc.transport import FaultSpec, FaultyTransport, LoopbackTransport


def _lossy(spec: FaultSpec, parties=("client", "provider")) -> tuple[FaultyTransport, ReliableChannel]:
    faulty = FaultyTransport(LoopbackTransport(parties=parties), spec)
    return faulty, ReliableChannel(faulty)


class TestReliabilityHeader:
    def test_data_frame_round_trip(self):
        blob = encode_reliable(TYPE_DATA, 42, b"payload bytes")
        assert decode_reliable(blob) == (TYPE_DATA, 42, b"payload bytes")

    def test_ack_frame_round_trip(self):
        blob = encode_reliable(TYPE_ACK, 7)
        assert decode_reliable(blob) == (TYPE_ACK, 7, b"")

    def test_header_is_ten_bytes(self):
        assert RELIABLE_HEADER.size == 10
        assert len(encode_reliable(TYPE_ACK, 0)) == 10

    def test_every_flipped_bit_is_detected(self):
        blob = encode_reliable(TYPE_DATA, 3, b"abc")
        for position in range(len(blob) * 8):
            damaged = bytearray(blob)
            damaged[position // 8] ^= 1 << (position % 8)
            with pytest.raises(WireFormatError):
                decode_reliable(bytes(damaged))

    def test_truncated_frame_rejected(self):
        blob = encode_reliable(TYPE_DATA, 1, b"x")
        for cut in range(RELIABLE_HEADER.size):
            with pytest.raises(WireFormatError):
                decode_reliable(blob[:cut])

    def test_unknown_type_rejected(self):
        with pytest.raises(WireFormatError):
            encode_reliable(0x99, 1, b"")

    def test_sequence_must_fit_u32(self):
        with pytest.raises(WireFormatError):
            encode_reliable(TYPE_DATA, 1 << 32, b"")


class TestReliableChannelCleanPipe:
    def test_frames_pass_through_in_order(self):
        _, channel = _lossy(FaultSpec())
        frames = [bytes([index]) * 20 for index in range(10)]
        for frame in frames:
            channel.send("client", frame)
        assert [channel.receive("provider") for _ in frames] == frames

    def test_ledger_counts_payload_bytes_once(self):
        faulty, channel = _lossy(FaultSpec())
        channel.send("client", b"12345")
        channel.receive("provider")
        # The reliable ledger charges the logical payload exactly once; the
        # wire underneath carries the 10-byte header (and the ack).
        assert channel.bytes_by_sender["client"] == 5
        assert faulty.bytes_by_sender["client"] == 15

    def test_empty_receive_raises_timeout_like_bare_transport(self):
        _, channel = _lossy(FaultSpec())
        with pytest.raises(TransportTimeoutError):
            channel.receive("provider")

    def test_invalid_max_attempts_rejected(self):
        with pytest.raises(ProtocolError):
            ReliableChannel(LoopbackTransport(), max_attempts=0)


class TestReliableChannelUnderFaults:
    def test_dropped_frame_is_retransmitted(self):
        faulty, channel = _lossy(FaultSpec(drop_rate=0.5, seed=2))
        frames = [bytes([index]) * 8 for index in range(30)]
        for frame in frames:
            channel.send("client", frame)
            assert channel.receive("provider") == frame
        assert faulty.fault_counts().get("drop", 0) > 0
        assert channel.stats["retransmissions"] > 0

    def test_corrupt_frame_dropped_and_recovered(self):
        faulty, channel = _lossy(FaultSpec(corrupt_rate=0.5, seed=3))
        frames = [bytes([index]) * 8 for index in range(30)]
        for frame in frames:
            channel.send("client", frame)
            assert channel.receive("provider") == frame
        assert faulty.fault_counts().get("corrupt", 0) > 0
        assert channel.stats["corrupt_dropped"] > 0

    def test_duplicates_are_deduplicated(self):
        faulty, channel = _lossy(FaultSpec(duplicate_rate=1.0, seed=4))
        frames = [bytes([index]) * 8 for index in range(10)]
        for frame in frames:
            channel.send("client", frame)
        assert [channel.receive("provider") for _ in frames] == frames
        assert channel.stats["duplicates_dropped"] > 0
        with pytest.raises(TransportTimeoutError):
            channel.receive("provider")  # no ninth frame materialises

    def test_reordered_frames_reassemble_in_order(self):
        faulty, channel = _lossy(FaultSpec(reorder_rate=0.5, seed=5))
        frames = [bytes([index]) * 8 for index in range(30)]
        for frame in frames:
            channel.send("client", frame)
        assert [channel.receive("provider") for _ in frames] == frames
        assert faulty.fault_counts().get("reorder", 0) > 0

    def test_cocktail_bidirectional_ping_pong(self):
        for seed in range(10):
            _, channel = _lossy(FaultSpec.loss_cocktail(0.05, seed=seed))
            for index in range(20):
                ping = b"ping%d" % index
                pong = b"pong%d" % index
                channel.send("client", ping)
                assert channel.receive("provider") == ping
                channel.send("provider", pong)
                assert channel.receive("client") == pong

    def test_gives_up_after_max_attempts(self):
        # A pipe that drops everything: the receiver can never make progress
        # on a frame that was sent, so the layer must raise, not spin.
        faulty, _ = _lossy(FaultSpec())
        inner = LoopbackTransport(parties=("client", "provider"))
        black_hole = FaultyTransport(inner, FaultSpec(drop_rate=1.0, seed=6))
        channel = ReliableChannel(black_hole, max_attempts=4)
        channel.send("client", b"never arrives")
        with pytest.raises(ReliabilityError):
            channel.receive("provider")

    def test_mid_stream_disconnect_surfaces_to_sender(self):
        from repro.exceptions import TransportClosedError

        _, channel = _lossy(FaultSpec(disconnect_after_frames=2, seed=7))
        channel.send("client", b"one")
        channel.send("client", b"two")
        with pytest.raises(TransportClosedError):
            channel.send("client", b"three")


class TestFaultSpecValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ProtocolError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ProtocolError):
            FaultSpec(corrupt_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ProtocolError):
            FaultSpec(drop_rate=0.6, corrupt_rate=0.6)

    def test_delay_frames_positive(self):
        with pytest.raises(ProtocolError):
            FaultSpec(delay_frames=0)

    def test_loss_cocktail_rates(self):
        spec = FaultSpec.loss_cocktail(0.05, seed=9)
        assert spec.drop_rate == spec.corrupt_rate == 0.05
        assert spec.reorder_rate == spec.duplicate_rate == 0.05
        assert spec.seed == 9


class TestFaultDeterminism:
    def _ledger(self, seed: int):
        faulty, channel = _lossy(FaultSpec.loss_cocktail(0.2, seed=seed))
        for index in range(25):
            channel.send("client", bytes([index]) * 12)
            channel.receive("provider")
        return faulty.fault_log

    def test_same_seed_same_ledger(self):
        assert self._ledger(11) == self._ledger(11)

    def test_different_seed_different_ledger(self):
        assert self._ledger(11) != self._ledger(12)

    def test_ledger_matches_counts(self):
        faulty, channel = _lossy(FaultSpec.loss_cocktail(0.2, seed=13))
        for index in range(25):
            channel.send("client", bytes([index]) * 12)
            channel.receive("provider")
        counts = faulty.fault_counts()
        assert counts == {
            kind: sum(1 for event in faulty.fault_log if event.kind == kind)
            for kind in counts
        }
        assert all(event.size > 0 for event in faulty.fault_log)
