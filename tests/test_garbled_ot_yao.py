"""Tests for garbling/evaluation, oblivious transfer, and the Yao driver."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.circuits import CircuitBuilder, SpamCircuit, TopicCircuit
from repro.crypto.garbled import decode_outputs, evaluate, garble
from repro.crypto.ot import ObliviousTransfer
from repro.crypto.yao import run_yao
from repro.exceptions import OTError, ProtocolAbort
from repro.twopc.transport import FramedChannel
from repro.utils.bitops import int_to_bits


def ot_channel(name="ot-test"):
    return FramedChannel.loopback(name, parties=("sender", "receiver"))


def yao_channel(name="yao-test"):
    return FramedChannel.loopback(name, parties=("garbler", "evaluator"))


def _and_xor_circuit():
    builder = CircuitBuilder()
    a = builder.garbler_input(4)
    b = builder.evaluator_input(4)
    outputs = [builder.and_(a[0], b[0]), builder.xor(a[1], b[1]), builder.not_(a[2]), builder.or_(a[3], b[3])]
    return builder.build(outputs)


class TestGarbledEvaluation:
    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_matches_plain_evaluation(self, a, b):
        circuit = _and_xor_circuit()
        a_bits, b_bits = int_to_bits(a, 4), int_to_bits(b, 4)
        expected = circuit.evaluate_plain(a_bits, b_bits)
        garbling = garble(circuit)
        labels = evaluate(
            circuit,
            garbling.tables,
            garbling.input_labels(circuit.garbler_inputs, a_bits),
            garbling.input_labels(circuit.evaluator_inputs, b_bits),
        )
        assert decode_outputs(circuit, garbling.tables, labels) == expected

    def test_spam_circuit_garbled(self):
        circuit = SpamCircuit.build(16)
        garbling = garble(circuit.circuit)
        labels = evaluate(
            circuit.circuit,
            garbling.tables,
            garbling.input_labels(circuit.circuit.garbler_inputs, circuit.garbler_bits(900, 500)),
            garbling.input_labels(circuit.circuit.evaluator_inputs, circuit.evaluator_bits(100, 100)),
        )
        assert SpamCircuit.decode_output(decode_outputs(circuit.circuit, garbling.tables, labels)) is True

    def test_deterministic_garbling_with_seed(self):
        circuit = _and_xor_circuit()
        g1 = garble(circuit, seed=b"fixed")
        g2 = garble(circuit, seed=b"fixed")
        assert g1.free_xor_offset == g2.free_xor_offset
        assert g1.wire_zero_labels == g2.wire_zero_labels

    def test_forged_output_label_rejected(self):
        circuit = _and_xor_circuit()
        garbling = garble(circuit)
        with pytest.raises(ProtocolAbort):
            decode_outputs(circuit, garbling.tables, [b"\x00" * 16] * len(circuit.outputs))

    def test_wrong_label_count_rejected(self):
        circuit = _and_xor_circuit()
        garbling = garble(circuit)
        with pytest.raises(ProtocolAbort):
            evaluate(circuit, garbling.tables, [], [])

    def test_table_size_scales_with_and_gates(self):
        circuit = _and_xor_circuit()
        garbling = garble(circuit)
        # 2 AND-bearing gates (AND + the AND inside OR), 4 rows of 16 bytes each.
        assert garbling.tables.size_bytes() >= 2 * 4 * 16


class TestObliviousTransfer:
    @pytest.mark.parametrize("mode", ["base", "iknp"])
    def test_receiver_gets_chosen_messages(self, dh_group, mode):
        count = 20
        pairs = [(bytes([i]) * 16, bytes([i + 100]) * 16) for i in range(count)]
        choices = [i % 2 for i in range(count)]
        channel = ot_channel()
        received = ObliviousTransfer(dh_group, mode=mode).run(channel, pairs, choices)
        assert received == [pair[choice] for pair, choice in zip(pairs, choices)]
        assert channel.pending() == 0

    @pytest.mark.parametrize("mode", ["base", "iknp"])
    def test_receiver_does_not_get_other_message(self, dh_group, mode):
        pairs = [(b"A" * 16, b"B" * 16)]
        channel = ot_channel()
        received = ObliviousTransfer(dh_group, mode=mode).run(channel, pairs, [0])
        assert received[0] == b"A" * 16 != b"B" * 16

    def test_empty_batch(self, dh_group):
        channel = ot_channel()
        assert ObliviousTransfer(dh_group).run(channel, [], []) == []

    def test_length_mismatch_rejected(self, dh_group):
        channel = ot_channel()
        with pytest.raises(OTError):
            ObliviousTransfer(dh_group).run(channel, [(b"a" * 16, b"b" * 16)], [0, 1])

    def test_unknown_mode_rejected(self, dh_group):
        with pytest.raises(OTError):
            ObliviousTransfer(dh_group, mode="quantum")

    def test_network_bytes_accounted(self, dh_group):
        channel = ot_channel()
        pairs = [(b"x" * 16, b"y" * 16)] * 8
        ObliviousTransfer(dh_group, mode="iknp").run(channel, pairs, [1] * 8)
        assert channel.total_bytes() > 0
        # Exact accounting: the total equals the sum of serialized frame sizes.
        assert channel.total_bytes() == sum(size for _, size in channel.transport.frame_log)


class TestYaoDriver:
    @pytest.mark.parametrize("output_to", ["evaluator", "garbler"])
    def test_spam_comparison_both_output_arrangements(self, dh_group, output_to):
        circuit = SpamCircuit.build(16)
        channel = yao_channel()
        result = run_yao(
            channel,
            circuit.circuit,
            garbler_bits=circuit.garbler_bits(1500, 700),
            evaluator_bits=circuit.evaluator_bits(200, 300),
            group=dh_group,
            output_to=output_to,
        )
        assert SpamCircuit.decode_output(result.output_bits) is True
        assert result.network_bytes > 0
        assert result.and_gates == circuit.circuit.and_count
        assert channel.pending() == 0

    def test_topic_argmax_through_yao(self, dh_group):
        circuit = TopicCircuit.build(16, 4, 6)
        scores = [10, 50, 30, 20]
        noises = [7, 11, 13, 17]
        indices = [3, 9, 27, 41]
        blinded = [(s + n) % 2**16 for s, n in zip(scores, noises)]
        channel = yao_channel("yao-topic")
        result = run_yao(
            channel,
            circuit.circuit,
            garbler_bits=circuit.garbler_bits(noises, indices),
            evaluator_bits=circuit.evaluator_bits(blinded),
            group=dh_group,
            output_to="evaluator",
        )
        assert TopicCircuit.decode_output(result.output_bits) == 9

    def test_invalid_output_target_rejected(self, dh_group):
        circuit = SpamCircuit.build(8)
        with pytest.raises(ProtocolAbort):
            run_yao(
                yao_channel("bad"),
                circuit.circuit,
                garbler_bits=circuit.garbler_bits(1, 2),
                evaluator_bits=circuit.evaluator_bits(0, 0),
                group=dh_group,
                output_to="nobody",
            )
