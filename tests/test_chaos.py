"""Chaos suite: full protocol runs over seeded fault cocktails.

The degraded-network contract, end to end: with the ack/retransmit layer in
place, a spam or topic protocol run over a pipe injecting seeded
drop/corrupt/reorder/duplicate faults (the 1% and 5% cocktails of the
acceptance bar) must produce *bit-identical* results to a clean run — and a
client killed mid-protocol must resume via snapshot + reconnect with zero
resubmissions.  The raw (unreliable) transport is driven through the same
cocktails as a control: runs the bare pipe cannot complete, the reliable
layer must.

Seeded sweeps (``@pytest.mark.chaos``) honour ``CHAOS_SEED`` so CI can run
each build under a fresh seed (the run id) while any failure stays exactly
reproducible — the same discipline as the wire-fuzz suite.
"""

import asyncio
import os

import pytest

from repro.core.runtime import (
    DecryptScheduler,
    FileSessionStore,
    ProviderRuntime,
    ShardedRuntime,
    spam_job,
)
from repro.crypto.chacha import open_sealed, seal
from repro.exceptions import (
    IntegrityError,
    ProtocolError,
    SnapshotError,
    TransportClosedError,
)
from repro.twopc.reliable import AsyncReliableTransport, chaos_channel
from repro.twopc.session import AsyncSessionPump
from repro.twopc.spam import SpamClientSession, SpamFilterProtocol
from repro.twopc.topics import TopicExtractionProtocol
from repro.twopc.transport import (
    AsyncFaultyTransport,
    AsyncFramedChannel,
    AsyncTcpTransport,
    FaultSpec,
    FaultyTransport,
    FramedChannel,
    LoopbackTransport,
)
from repro.twopc.wire import SessionState, WireCodec

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "20170814"))

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {i: 1 for i in range(0, 200, 7)},
]

TOPIC_EMAILS = [
    {2: 1, 3: 2, 77: 1},
    {150: 4, 151: 1, 10: 2},
]

#: The acceptance-bar loss rates: light damage and heavy damage.
COCKTAIL_RATES = (0.01, 0.05)


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


def _spam_chaos_channel(protocol, setup, spec):
    return chaos_channel(spec, scheme=protocol.scheme, public_key=setup.keypair.public)


# ---------------------------------------------------------------------------
# Full protocol runs through the fault cocktails
# ---------------------------------------------------------------------------
class TestChaosSpamRuns:
    def test_cocktails_produce_bit_identical_verdicts(self, spam_setup, small_spam_model):
        protocol, setup = spam_setup
        clean = [protocol.classify_email(setup, features) for features in SPAM_EMAILS]
        assert [r.is_spam for r in clean] == [
            small_spam_model.predict_is_spam(features) for features in SPAM_EMAILS
        ]
        for rate in COCKTAIL_RATES:
            for index, features in enumerate(SPAM_EMAILS):
                spec = FaultSpec.loss_cocktail(rate, seed=CHAOS_SEED + index)
                channel, faulty, reliable = _spam_chaos_channel(protocol, setup, spec)
                chaotic = protocol.classify_email(setup, features, channel=channel)
                assert chaotic.is_spam == clean[index].is_spam
                assert chaotic.yao_and_gates == clean[index].yao_and_gates
                # The protocol-level ledger is unchanged by retransmissions:
                # the reliable layer charges each logical frame exactly once.
                assert chaotic.network_messages == clean[index].network_messages

    def test_heavy_damage_is_actually_injected_and_recovered(self, spam_setup):
        # At a 20% cocktail the ledger must show real faults; the run still
        # completes identically (this is the load-bearing resilience claim).
        protocol, setup = spam_setup
        clean = protocol.classify_email(setup, SPAM_EMAILS[0])
        injected_any = False
        for attempt in range(8):
            spec = FaultSpec.loss_cocktail(0.2, seed=CHAOS_SEED + attempt)
            channel, faulty, reliable = _spam_chaos_channel(protocol, setup, spec)
            chaotic = protocol.classify_email(setup, SPAM_EMAILS[0], channel=channel)
            assert chaotic.is_spam == clean.is_spam
            injected_any = injected_any or bool(faulty.fault_log)
        assert injected_any, "eight 20% cocktails injected nothing — injector is dead"


class TestChaosTopicRuns:
    def test_cocktails_produce_bit_identical_topics(self, topic_setup):
        protocol, setup = topic_setup
        clean = [
            protocol.extract_topic(setup, features, candidate_topics=[0, 2, 5])
            for features in TOPIC_EMAILS
        ]
        for rate in COCKTAIL_RATES:
            for index, features in enumerate(TOPIC_EMAILS):
                spec = FaultSpec.loss_cocktail(rate, seed=CHAOS_SEED + 100 + index)
                channel, _, _ = chaos_channel(
                    spec, scheme=protocol.scheme, public_key=setup.keypair.public
                )
                chaotic = protocol.extract_topic(
                    setup, features, candidate_topics=[0, 2, 5], channel=channel
                )
                assert chaotic.extracted_topic == clean[index].extracted_topic
                assert chaotic.candidates_used == clean[index].candidates_used


class TestRawTransportControl:
    """The control arm: the bare faulty pipe must fail where reliable succeeds."""

    def _raw_channel(self, protocol, setup, spec):
        faulty = FaultyTransport(LoopbackTransport(parties=("client", "provider")), spec)
        codec = WireCodec(scheme=protocol.scheme, public_key=setup.keypair.public)
        return FramedChannel(faulty, codec), faulty

    def test_raw_pipe_fails_where_reliable_completes(self, spam_setup):
        protocol, setup = spam_setup
        # Find a seed whose cocktail demonstrably damages this run, then show
        # the asymmetry: reliable completes, raw raises.
        for seed in range(CHAOS_SEED, CHAOS_SEED + 64):
            spec = FaultSpec(drop_rate=0.25, corrupt_rate=0.25, seed=seed)
            channel, faulty, _ = _spam_chaos_channel(protocol, setup, spec)
            result = protocol.classify_email(setup, SPAM_EMAILS[0], channel=channel)
            if not faulty.fault_log:
                continue
            raw_channel, raw_faulty = self._raw_channel(
                protocol, setup, FaultSpec(drop_rate=0.25, corrupt_rate=0.25, seed=seed)
            )
            with pytest.raises(ProtocolError):
                protocol.classify_email(setup, SPAM_EMAILS[0], channel=raw_channel)
            return
        pytest.fail("no seed in the sweep injected a fault — injector is dead")


# ---------------------------------------------------------------------------
# Reconnect-resume: snapshot, go away, come back on a fresh channel
# ---------------------------------------------------------------------------
class TestReconnectResume:
    def test_in_process_disconnect_resume_matches_clean(self, spam_setup):
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        clean = protocol.classify_email(setup, SPAM_EMAILS[0])

        runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
        job = spam_job(protocol, setup, SPAM_EMAILS[0], label=7, ot_pool=pool)
        assert runtime.serve_burst([job]) == []  # parked inside the open window

        state = runtime.disconnect_job(7)
        assert runtime.outstanding_jobs() == 0
        assert runtime.disconnected_jobs() == 1
        blob = state.to_bytes()  # the bytes the device carries offline

        client = SpamClientSession.restore(
            protocol, setup, SessionState.from_bytes(blob), ot_pool=pool
        )
        channel = protocol.make_channel(setup, name="reconnect")
        runtime.reconnect_job(7, channel, client)
        assert runtime.disconnected_jobs() == 0
        finished = runtime.drain()
        assert [j.label for j in finished] == [7]
        assert finished[0].client.is_spam == clean.is_spam

    def test_disconnect_unknown_or_finished_job_rejected(self, spam_setup):
        protocol, setup = spam_setup
        runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
        with pytest.raises(ProtocolError):
            runtime.disconnect_job("nope")
        with pytest.raises(ProtocolError):
            runtime.reconnect_job("nope", None, None)

    def test_reconnected_window_still_batches(self, spam_setup):
        # Two jobs park in one window; one client disconnects and returns.
        # The window must still fold both decrypts into one batched call.
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
        jobs = [
            spam_job(protocol, setup, features, label=index, ot_pool=pool)
            for index, features in enumerate(SPAM_EMAILS[:2])
        ]
        assert runtime.serve_burst(jobs) == []
        state = runtime.disconnect_job(0)
        client = SpamClientSession.restore(
            protocol, setup, SessionState.from_bytes(state.to_bytes()), ot_pool=pool
        )
        runtime.reconnect_job(0, protocol.make_channel(setup, name="rc"), client)
        finished = runtime.drain()
        assert sorted(j.label for j in finished) == [0, 1]
        per_email = setup.encrypted_model.result_ciphertext_count()
        assert max(runtime.decrypt_batch_sizes) >= 2 * per_email

    def test_sharded_disconnect_resume_zero_resubmissions(self, spam_setup):
        protocol, setup = spam_setup
        clean = protocol.classify_email(setup, SPAM_EMAILS[0])
        with ShardedRuntime(num_shards=1, window_bursts=100) as runtime:
            runtime.register_spam("mobile@example.com", protocol, setup)
            (job_id,) = runtime.submit_spam([("mobile@example.com", SPAM_EMAILS[0])])
            blob = runtime.disconnect_client(job_id)
            assert isinstance(blob, bytes) and blob
            stats = runtime.shard_stats()[0]
            assert stats["disconnected_jobs"] == 1
            runtime.reconnect_client(job_id, blob)
            runtime.drain()
            result = runtime.take_result(job_id)
            assert result.is_spam == clean.is_spam
            stats = runtime.shard_stats()[0]
            # Zero resubmissions: nothing was recomputed, nothing restored
            # from checkpoint — the parked session simply re-attached.
            assert stats["disconnected_jobs"] == 0
            assert stats["restored_jobs"] == 0

    def test_sharded_disconnect_unknown_job_rejected(self, spam_setup):
        protocol, setup = spam_setup
        with ShardedRuntime(num_shards=1, window_bursts=100) as runtime:
            runtime.register_spam("mobile@example.com", protocol, setup)
            with pytest.raises(ProtocolError):
                runtime.disconnect_client(999)


# ---------------------------------------------------------------------------
# Async arrangement: faulty + reliable endpoints over real TCP
# ---------------------------------------------------------------------------
class TestAsyncChaos:
    def _run_chaotic_tcp_session(self, protocol, setup, features, rate, seed):
        async def scenario():
            provider_pump = AsyncSessionPump(window_seconds=0.02)
            client_pump = AsyncSessionPump()
            pool = protocol.make_ot_pool(setup)

            def codec():
                return WireCodec(scheme=protocol.scheme, public_key=setup.keypair.public)

            async def handle_connection(transport):
                wrapped = AsyncReliableTransport(
                    AsyncFaultyTransport(transport, FaultSpec.loss_cocktail(rate, seed=seed))
                )
                channel = AsyncFramedChannel(wrapped, codec())
                session = protocol.provider_session(setup, ot_pool=pool)
                await provider_pump.run_session(channel, "provider", session)

            server = await AsyncTcpTransport.start_server(handle_connection, port=0)
            port = server.sockets[0].getsockname()[1]
            transport = await AsyncTcpTransport.connect("127.0.0.1", port)
            faulty = AsyncFaultyTransport(
                transport, FaultSpec.loss_cocktail(rate, seed=seed + 1)
            )
            reliable = AsyncReliableTransport(faulty)
            channel = AsyncFramedChannel(reliable, codec())
            session = protocol.client_session(setup, features, ot_pool=pool)
            try:
                await client_pump.run_session(channel, "client", session)
                return session.is_spam, faulty.fault_counts()
            finally:
                await channel.aclose()
                server.close()
                await server.wait_closed()

        return asyncio.run(scenario())

    def test_tcp_session_survives_cocktails(self, spam_setup):
        protocol, setup = spam_setup
        clean = protocol.classify_email(setup, SPAM_EMAILS[0])
        for rate in COCKTAIL_RATES:
            verdict, _faults = self._run_chaotic_tcp_session(
                protocol, setup, SPAM_EMAILS[0], rate, CHAOS_SEED
            )
            assert verdict == clean.is_spam


# ---------------------------------------------------------------------------
# Sealed checkpoints (the AEAD satellite)
# ---------------------------------------------------------------------------
class TestSealedBlobs:
    def test_seal_round_trip(self):
        key = bytes(range(32))
        blob = seal(key, b"checkpoint payload")
        assert open_sealed(key, blob) == b"checkpoint payload"

    def test_ciphertext_hides_plaintext(self):
        blob = seal(bytes(32), b"garble seeds live here")
        assert b"garble seeds" not in blob

    def test_wrong_key_refused(self):
        blob = seal(bytes(32), b"data")
        with pytest.raises(IntegrityError):
            open_sealed(bytes([1]) * 32, blob)

    def test_every_flipped_bit_refused(self):
        key = bytes(range(32))
        blob = seal(key, b"short")
        for position in range(0, len(blob) * 8, 7):  # stride keeps it fast
            damaged = bytearray(blob)
            damaged[position // 8] ^= 1 << (position % 8)
            with pytest.raises(IntegrityError):
                open_sealed(key, bytes(damaged))

    def test_legacy_plaintext_version_byte_refused(self):
        with pytest.raises(IntegrityError):
            open_sealed(bytes(32), b"\x00" + bytes(60))
        with pytest.raises(IntegrityError):
            open_sealed(bytes(32), b"too short")


class TestSealedFileStore:
    def test_blobs_are_sealed_on_disk(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.put("window", b"secret session bytes")
        on_disk = (tmp_path / "window.state").read_bytes()
        assert b"secret session bytes" not in on_disk
        assert store.get("window") == b"secret session bytes"

    def test_reopened_store_shares_the_key_file(self, tmp_path):
        FileSessionStore(tmp_path).put("k", b"persisted")
        assert FileSessionStore(tmp_path).get("k") == b"persisted"

    def test_explicit_key_overrides_key_file(self, tmp_path):
        key = bytes(range(32))
        FileSessionStore(tmp_path, key=key).put("k", b"v")
        assert FileSessionStore(tmp_path, key=key).get("k") == b"v"
        with pytest.raises(SnapshotError):
            FileSessionStore(tmp_path, key=bytes(32)).get("k")

    def test_legacy_plaintext_checkpoint_refused_not_misparsed(self, tmp_path):
        store = FileSessionStore(tmp_path)
        (tmp_path / "legacy.state").write_bytes(b"pre-AEAD plaintext checkpoint")
        with pytest.raises(SnapshotError):
            store.get("legacy")
        store.delete("legacy")
        assert store.get("legacy") is None

    def test_tampered_checkpoint_refused(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.put("k", b"authentic")
        path = tmp_path / "k.state"
        sealed = bytearray(path.read_bytes())
        sealed[-1] ^= 1
        path.write_bytes(bytes(sealed))
        with pytest.raises(SnapshotError):
            store.get("k")


# ---------------------------------------------------------------------------
# Seeded sweep: many cocktails per build (CI passes the run id as CHAOS_SEED)
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestSeededChaosSweep:
    def test_spam_sweep_across_seeds_and_rates(self, spam_setup):
        protocol, setup = spam_setup
        clean = protocol.classify_email(setup, SPAM_EMAILS[1])
        for offset in range(6):
            for rate in COCKTAIL_RATES:
                spec = FaultSpec.loss_cocktail(rate, seed=CHAOS_SEED + 1000 + offset)
                channel, _, _ = _spam_chaos_channel(protocol, setup, spec)
                chaotic = protocol.classify_email(setup, SPAM_EMAILS[1], channel=channel)
                assert chaotic.is_spam == clean.is_spam, (
                    f"divergence at rate={rate} seed={CHAOS_SEED + 1000 + offset} "
                    f"(rerun with CHAOS_SEED={CHAOS_SEED})"
                )

    def test_disconnect_mid_cocktail_then_resume(self, spam_setup):
        # Chaos + reconnect composed: the job parks, the client goes away,
        # comes back, and the verdict still matches the clean run.
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        clean = protocol.classify_email(setup, SPAM_EMAILS[2])
        for offset in range(3):
            runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
            job = spam_job(protocol, setup, SPAM_EMAILS[2], label=offset, ot_pool=pool)
            assert runtime.serve_burst([job]) == []
            state = runtime.disconnect_job(offset)
            client = SpamClientSession.restore(
                protocol, setup, SessionState.from_bytes(state.to_bytes()), ot_pool=pool
            )
            runtime.reconnect_job(offset, protocol.make_channel(setup), client)
            finished = runtime.drain()
            assert finished[0].client.is_spam == clean.is_spam

    def test_disconnect_fault_surfaces_cleanly(self, spam_setup):
        # A mid-stream hangup (the disconnect fault) kills the run with
        # TransportClosedError — the signal the reconnect path starts from.
        protocol, setup = spam_setup
        spec = FaultSpec(disconnect_after_frames=3, seed=CHAOS_SEED)
        channel, _, _ = _spam_chaos_channel(protocol, setup, spec)
        with pytest.raises(TransportClosedError):
            protocol.classify_email(setup, SPAM_EMAILS[0], channel=channel)


# ---------------------------------------------------------------------------
# Held-frame drain: a stranded tail frame must survive end-of-stream
# ---------------------------------------------------------------------------
class TestHeldFrameDrain:
    """Held (reordered/delayed) frames are normally released by *later sends*
    crossing their deadline.  A session's final outbound frame therefore used
    to strand: nothing else was ever sent, so the wrapper sat on it forever.
    ``drain()`` (and close/aclose) must deliver the tail regardless."""

    def test_sync_drain_delivers_stranded_tail(self):
        inner = LoopbackTransport(parties=("client", "provider"))
        faulty = FaultyTransport(
            inner, FaultSpec(delay_rate=1.0, delay_frames=50, seed=CHAOS_SEED)
        )
        for payload in (b"one", b"two", b"three"):
            faulty.send("client", payload)
        assert inner.pending() == 0  # all three held, none released
        assert faulty.pending() == 3
        faulty.drain()
        # Released oldest-first: the receiver sees the original order.
        received = [inner.receive("provider", 1.0) for _ in range(3)]
        assert received == [b"one", b"two", b"three"]

    def test_sync_close_drains_first(self):
        inner = LoopbackTransport(parties=("client", "provider"))
        faulty = FaultyTransport(
            inner, FaultSpec(delay_rate=1.0, delay_frames=50, seed=CHAOS_SEED)
        )
        faulty.send("client", b"tail")
        faulty.close()
        # The held frame moved into the inner pipe before the close: the
        # injector holds nothing, the inner ledger charged the send.
        assert faulty._injector.held == []
        assert faulty.inner.messages_by_sender.get("client") == 1

    def test_async_drain_and_aclose_deliver_stranded_tail(self):
        class _RecordingInner:
            name = "recording"
            parties = ("client", "provider")
            local_party = "client"

            def __init__(self):
                self.sent = []
                self.closed = False

            def peer_of(self, party):
                return "provider" if party == "client" else "client"

            def pending(self):
                return 0

            async def send(self, sender, frame):
                self.sent.append((sender, bytes(frame)))

            async def aclose(self):
                self.closed = True

        async def scenario():
            inner = _RecordingInner()
            faulty = AsyncFaultyTransport(
                inner, FaultSpec(delay_rate=1.0, delay_frames=50, seed=CHAOS_SEED)
            )
            await faulty.send("client", b"one")
            await faulty.send("client", b"two")
            assert inner.sent == []  # both held
            assert faulty.pending() == 2
            await faulty.drain()
            assert [frame for _, frame in inner.sent] == [b"one", b"two"]
            await faulty.send("client", b"tail")  # held again
            await faulty.aclose()  # aclose drains before closing
            assert [frame for _, frame in inner.sent] == [b"one", b"two", b"tail"]
            assert inner.closed

        asyncio.run(scenario())
