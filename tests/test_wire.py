"""Wire-codec tests: property-based roundtrips for every frame type plus a
pinned-bytes golden test that catches accidental format drift.

The frames are the system boundary (every protocol message crosses parties as
``codec.encode(frame)`` bytes), so two properties matter: *roundtrip* — frame
→ bytes → frame is bit-identical for arbitrary payloads — and *stability* —
the byte layout only changes together with :data:`repro.twopc.wire.WIRE_VERSION`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.garbled import LABEL_BYTES, GarbledGate, GarbledTables
from repro.exceptions import WireFormatError
from repro.twopc.wire import (
    WIRE_VERSION,
    BlindedScoresFrame,
    ClassifyResultFrame,
    ControlFrame,
    ControlVerb,
    ExtractedCandidatesFrame,
    FeaturesFrame,
    GarbledCircuitFrame,
    OtCipherPairsFrame,
    OtExtColumnsFrame,
    OtExtPairsFrame,
    OtPublicsFrame,
    OtResponsesFrame,
    OutputLabelsFrame,
    SessionState,
    SessionStateFrame,
    SessionStateKind,
    WireCodec,
)

codec = WireCodec()

elements = st.lists(st.integers(min_value=0, max_value=2**521), max_size=6).map(tuple)
blobs = st.binary(max_size=64)
pairs = st.lists(st.tuples(blobs, blobs), max_size=5).map(tuple)
labels = st.lists(st.binary(min_size=LABEL_BYTES, max_size=LABEL_BYTES), max_size=5).map(tuple)


class TestRoundTrips:
    @given(elements)
    @settings(max_examples=40, deadline=None)
    def test_ot_publics(self, values):
        assert codec.decode(codec.encode(OtPublicsFrame(values))) == OtPublicsFrame(values)

    @given(elements)
    @settings(max_examples=40, deadline=None)
    def test_ot_responses(self, values):
        assert codec.decode(codec.encode(OtResponsesFrame(values))) == OtResponsesFrame(values)

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_ot_cipherpairs(self, values):
        frame = OtCipherPairsFrame(values)
        assert codec.decode(codec.encode(frame)) == frame

    @given(pairs)
    @settings(max_examples=40, deadline=None)
    def test_ot_ext_pairs(self, values):
        frame = OtExtPairsFrame(values)
        assert codec.decode(codec.encode(frame)) == frame

    @given(st.lists(blobs, max_size=6).map(tuple), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_ot_ext_columns(self, columns, start):
        frame = OtExtColumnsFrame(columns, start_index=start)
        decoded = codec.decode(codec.encode(frame))
        assert decoded == frame
        assert decoded.start_index == start

    @given(labels)
    @settings(max_examples=40, deadline=None)
    def test_output_labels(self, values):
        frame = OutputLabelsFrame(values)
        assert codec.decode(codec.encode(frame)) == frame

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=2**32 - 1),
            ),
            max_size=8,
        ).map(tuple)
    )
    @settings(max_examples=40, deadline=None)
    def test_features(self, values):
        frame = FeaturesFrame(values)
        assert codec.decode(codec.encode(frame)) == frame

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_classify_result(self, category):
        frame = ClassifyResultFrame(category)
        assert codec.decode(codec.encode(frame)) == frame

    @given(
        st.sampled_from(sorted(
            value for name, value in vars(ControlVerb).items() if not name.startswith("_")
        )),
        st.integers(min_value=0, max_value=255),
        blobs,
    )
    @settings(max_examples=40, deadline=None)
    def test_control(self, verb, version, payload):
        frame = ControlFrame(verb=verb, version=version, payload=payload)
        assert codec.decode(codec.encode(frame)) == frame

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), unique=True, max_size=4),
        st.integers(min_value=0, max_value=3),
        labels,
        st.booleans(),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_garbled_circuit(self, positions, outputs, garbler_labels, decode_flag, rnd):
        tables = GarbledTables(
            and_gates={
                position: GarbledGate(
                    gate_index=position,
                    rows=[bytes(rnd.getrandbits(8) for _ in range(LABEL_BYTES)) for _ in range(4)],
                )
                for position in positions
            },
            output_decode=[
                (
                    bytes(rnd.getrandbits(8) for _ in range(LABEL_BYTES)),
                    bytes(rnd.getrandbits(8) for _ in range(LABEL_BYTES)),
                )
                for _ in range(outputs)
            ],
        )
        frame = GarbledCircuitFrame(tables, garbler_labels, decode_flag)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.garbler_labels == frame.garbler_labels
        assert decoded.decode_at_evaluator == frame.decode_at_evaluator
        assert decoded.tables.output_decode == tables.output_decode
        assert set(decoded.tables.and_gates) == set(tables.and_gates)
        for position, gate in tables.and_gates.items():
            assert decoded.tables.and_gates[position].rows == gate.rows


class TestCiphertextFrames:
    def _codec(self, scheme, keys):
        return WireCodec(scheme=scheme, public_key=keys.public)

    @pytest.mark.parametrize("frame_cls", [BlindedScoresFrame, ExtractedCandidatesFrame])
    def test_bv_roundtrip_bit_identical(self, bv_scheme, bv_keys, frame_cls):
        ciphertexts = tuple(
            bv_scheme.encrypt_slots(bv_keys.public, [index, index + 1])
            for index in range(3)
        )
        wire = self._codec(bv_scheme, bv_keys)
        decoded = wire.decode(wire.encode(frame_cls(ciphertexts)))
        assert isinstance(decoded, frame_cls)
        assert len(decoded.ciphertexts) == 3
        for original, restored in zip(ciphertexts, decoded.ciphertexts):
            np.testing.assert_array_equal(
                original.payload.c0.spectra, restored.payload.c0.spectra
            )
            np.testing.assert_array_equal(
                original.payload.c1.spectra, restored.payload.c1.spectra
            )
            assert restored.size_bytes == bv_scheme.ciphertext_size_bytes()

    def test_bv_roundtrip_still_decrypts(self, bv_scheme, bv_keys):
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [7, 11, 13])
        wire = self._codec(bv_scheme, bv_keys)
        frame = wire.decode(wire.encode(BlindedScoresFrame((ciphertext,))))
        assert bv_scheme.decrypt_slots(bv_keys, frame.ciphertexts[0])[:3] == [7, 11, 13]

    def test_paillier_roundtrip_still_decrypts(self, paillier_scheme, paillier_keys):
        ciphertext = paillier_scheme.encrypt_slots(paillier_keys.public, [41, 42])
        wire = self._codec(paillier_scheme, paillier_keys)
        frame = wire.decode(wire.encode(BlindedScoresFrame((ciphertext,))))
        restored = frame.ciphertexts[0]
        assert restored.payload[0] == ciphertext.payload[0]
        assert paillier_scheme.decrypt_slots(paillier_keys, restored)[:2] == [41, 42]

    def test_serialized_length_is_constant(self, bv_scheme, bv_keys):
        for values in ([], [1], list(range(50))):
            ciphertext = bv_scheme.encrypt_slots(bv_keys.public, values)
            assert (
                len(bv_scheme.serialize_ciphertext(ciphertext))
                == bv_scheme.ciphertext_size_bytes()
            )

    def test_schemeless_codec_rejects_ciphertext_frames(self, bv_scheme, bv_keys):
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [1])
        with pytest.raises(WireFormatError):
            codec.encode(BlindedScoresFrame((ciphertext,)))

    def test_corrupt_residue_rejected(self, bv_scheme, bv_keys):
        data = bytearray(
            bv_scheme.serialize_ciphertext(bv_scheme.encrypt_slots(bv_keys.public, [1]))
        )
        data[5:9] = (0xFFFFFFFF).to_bytes(4, "big")  # residue >= every prime
        with pytest.raises(WireFormatError):
            bv_scheme.deserialize_ciphertext(bytes(data))


class TestMalformedFrames:
    def test_bad_magic(self):
        encoded = bytearray(codec.encode(ClassifyResultFrame(1)))
        encoded[0] ^= 0xFF
        with pytest.raises(WireFormatError):
            codec.decode(bytes(encoded))

    def test_bad_version(self):
        encoded = bytearray(codec.encode(ClassifyResultFrame(1)))
        encoded[1] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError):
            codec.decode(bytes(encoded))

    def test_unknown_type(self):
        encoded = bytearray(codec.encode(ClassifyResultFrame(1)))
        encoded[2] = 0x7F
        with pytest.raises(WireFormatError):
            codec.decode(bytes(encoded))

    def test_truncated(self):
        encoded = codec.encode(OtPublicsFrame((12345,)))
        with pytest.raises(WireFormatError):
            codec.decode(encoded[:-1])

    def test_trailing_bytes(self):
        encoded = codec.encode(ClassifyResultFrame(1))
        with pytest.raises(WireFormatError):
            codec.decode(encoded + b"\x00")

    def test_unknown_control_verb(self):
        encoded = bytearray(
            codec.encode(ControlFrame(ControlVerb.HEARTBEAT, 1, b""))
        )
        encoded[3] = 0x7F  # verb byte, right after the 3-byte header
        with pytest.raises(WireFormatError):
            codec.decode(bytes(encoded))

    def test_control_verb_validated_at_construction(self):
        with pytest.raises(WireFormatError):
            ControlFrame(verb=0x7F, version=1, payload=b"")


# Pinned encodings: regenerate ONLY together with a WIRE_VERSION bump.
GOLDEN_FRAMES = {
    "ot_publics": "5a010300000003000000010100000001ff00000006010000000000",
    "ot_cipherpairs": "5a010500000001000000017800000002797a",
    "ot_ext_columns": "5a0106000000070000000200000002616200000000",
    "output_labels": "5a010900000001000102030405060708090a0b0c0d0e0f",
    "features": "5a010a0000000200000001000000020000000300000004",
    "classify_result": "5a010b00000005",
    "session_state": "5a010c210100000003010203",
    "control": "5a010d020100000003010203",
    "garbled_circuit": "5a01080000006c00000001000000030000000000000000000000000000000001010101010101010101010101010101020202020202020202020202020202020303030303030303030303030303030300000001aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb00000001cccccccccccccccccccccccccccccccc01",  # noqa: E501
}


def _golden_frame(name):
    if name == "ot_publics":
        return OtPublicsFrame((1, 255, 2**40))
    if name == "ot_cipherpairs":
        return OtCipherPairsFrame(((b"x", b"yz"),))
    if name == "ot_ext_columns":
        return OtExtColumnsFrame((b"ab", b""), start_index=7)
    if name == "output_labels":
        return OutputLabelsFrame((bytes(range(16)),))
    if name == "features":
        return FeaturesFrame(((1, 2), (3, 4)))
    if name == "classify_result":
        return ClassifyResultFrame(5)
    if name == "session_state":
        return SessionStateFrame(
            SessionState(
                kind=SessionStateKind.SPAM_PROVIDER, version=1, payload=b"\x01\x02\x03"
            )
        )
    if name == "control":
        return ControlFrame(
            verb=ControlVerb.COMMAND, version=1, payload=b"\x01\x02\x03"
        )
    if name == "garbled_circuit":
        return GarbledCircuitFrame(
            tables=GarbledTables(
                and_gates={
                    3: GarbledGate(gate_index=3, rows=[bytes([i]) * 16 for i in range(4)])
                },
                output_decode=[(b"\xaa" * 16, b"\xbb" * 16)],
            ),
            garbler_labels=(b"\xcc" * 16,),
            decode_at_evaluator=True,
        )
    raise AssertionError(name)


class TestGoldenBytes:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_pinned_encoding(self, name):
        assert codec.encode(_golden_frame(name)).hex() == GOLDEN_FRAMES[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN_FRAMES))
    def test_pinned_bytes_decode(self, name):
        decoded = codec.decode(bytes.fromhex(GOLDEN_FRAMES[name]))
        assert codec.encode(decoded).hex() == GOLDEN_FRAMES[name]
