"""Transport-layer tests: loopback and socket transports, framed channels.

The transport is where byte accounting lives, so the ledger invariants are
tested here: every accepted frame is charged exactly ``len(data)`` to its
sender, message counts and rounds track the frame log, and both transports
deliver FIFO per direction — including frames much larger than a socket
buffer from a single driving thread.
"""

import pytest

from repro.exceptions import ProtocolError
from repro.twopc.transport import FramedChannel, LoopbackTransport, SocketTransport
from repro.twopc.wire import ClassifyResultFrame, FeaturesFrame, OtExtColumnsFrame, WireCodec


class TestLoopbackTransport:
    def test_fifo_per_direction(self):
        transport = LoopbackTransport()
        transport.send("client", b"first")
        transport.send("client", b"second")
        transport.send("provider", b"reply")
        assert transport.receive("provider") == b"first"
        assert transport.receive("provider") == b"second"
        assert transport.receive("client") == b"reply"
        assert transport.pending() == 0

    def test_exact_byte_accounting(self):
        transport = LoopbackTransport()
        transport.send("client", b"x" * 100)
        transport.send("provider", b"y" * 50)
        assert transport.bytes_by_sender == {"client": 100, "provider": 50}
        assert transport.total_bytes() == 150
        assert transport.total_messages() == 2
        assert transport.frame_log == [("client", 100), ("provider", 50)]

    def test_rounds_count_direction_bursts(self):
        transport = LoopbackTransport()
        assert transport.rounds() == 0
        transport.send("client", b"a")
        transport.send("client", b"b")   # same burst
        assert transport.rounds() == 1
        transport.send("provider", b"c")
        assert transport.rounds() == 2
        transport.send("client", b"d")
        assert transport.rounds() == 3

    def test_empty_receive_raises(self):
        transport = LoopbackTransport()
        with pytest.raises(ProtocolError):
            transport.receive("client")

    def test_unknown_party_rejected(self):
        transport = LoopbackTransport(parties=("alice", "bob"))
        with pytest.raises(ProtocolError):
            transport.send("mallory", b"hi")
        with pytest.raises(ProtocolError):
            transport.receive("mallory")

    def test_peer_of(self):
        transport = LoopbackTransport(parties=("alice", "bob"))
        assert transport.peer_of("alice") == "bob"
        assert transport.peer_of("bob") == "alice"


class TestSocketTransport:
    def test_roundtrip_and_accounting(self):
        transport = SocketTransport(timeout=10.0)
        try:
            transport.send("client", b"hello")
            transport.send("provider", b"world!")
            assert transport.receive("provider") == b"hello"
            assert transport.receive("client") == b"world!"
            assert transport.bytes_by_sender == {"client": 5, "provider": 6}
            assert transport.pending() == 0
        finally:
            transport.close()

    def test_large_frames_from_single_thread(self):
        # Frames larger than typical kernel socket buffers must not deadlock
        # a single-threaded driver that sends both before receiving.
        transport = SocketTransport(timeout=30.0)
        try:
            big = bytes(range(256)) * 4096  # 1 MiB
            transport.send("client", big)
            transport.send("provider", big[::-1])
            assert transport.receive("provider") == big
            assert transport.receive("client") == big[::-1]
        finally:
            transport.close()

    def test_fifo_order_preserved(self):
        transport = SocketTransport(timeout=10.0)
        try:
            for index in range(20):
                transport.send("client", bytes([index]))
            received = [transport.receive("provider") for _ in range(20)]
            assert received == [bytes([index]) for index in range(20)]
        finally:
            transport.close()

    def test_send_after_close_rejected(self):
        transport = SocketTransport()
        transport.close()
        with pytest.raises(ProtocolError):
            transport.send("client", b"late")


class TestFramedChannel:
    @pytest.mark.parametrize("make_transport", [LoopbackTransport, SocketTransport])
    def test_typed_frames_roundtrip(self, make_transport):
        channel = FramedChannel(make_transport(), WireCodec())
        try:
            sent = FeaturesFrame(((1, 2), (9, 1)))
            size = channel.send("client", sent)
            assert size == len(channel.codec.encode(sent))
            assert channel.receive("provider") == sent
            channel.send("provider", ClassifyResultFrame(3))
            assert channel.receive("client") == ClassifyResultFrame(3)
        finally:
            channel.close()

    def test_total_bytes_is_sum_of_frame_lengths(self):
        channel = FramedChannel.loopback()
        frames = [
            FeaturesFrame(((0, 1),)),
            OtExtColumnsFrame((b"col",), start_index=4),
            ClassifyResultFrame(0),
        ]
        expected = 0
        for frame in frames:
            expected += len(channel.codec.encode(frame))
            channel.send("client", frame)
        assert channel.total_bytes() == expected
        assert channel.total_messages() == len(frames)
        assert [size for _, size in channel.transport.frame_log] == [
            len(channel.codec.encode(frame)) for frame in frames
        ]
