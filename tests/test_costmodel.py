"""Tests for the analytic cost model (Fig. 3) and its paper-shape predictions."""

import pytest

from repro.costmodel import (
    CostEstimate,
    MicrobenchmarkConstants,
    WorkloadParameters,
    estimate_baseline,
    estimate_noprv,
    estimate_pretzel,
)
from repro.costmodel.estimates import estimate_all, format_table
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def constants():
    return MicrobenchmarkConstants.paper_values()


class TestWorkloadParameters:
    def test_dot_product_bits(self):
        workload = WorkloadParameters(email_features=692, value_bits=10, frequency_bits=4)
        assert workload.dot_product_bits == 10 + 10 + 4

    def test_effective_values(self):
        workload = WorkloadParameters(model_features=100, selected_features=25, categories=8, candidate_topics=3)
        assert workload.effective_features == 25
        assert workload.effective_candidates == 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(categories=1)
        with pytest.raises(ParameterError):
            WorkloadParameters(model_features=10, selected_features=20)
        with pytest.raises(ParameterError):
            WorkloadParameters(categories=4, candidate_topics=9)


class TestPaperShapes:
    """The cost model must reproduce the qualitative claims of §6."""

    def test_spam_storage_ordering(self, constants):
        workload = WorkloadParameters.spam_default()
        baseline = estimate_baseline(constants, workload)
        pretzel = estimate_pretzel(constants, workload)
        # Fig. 8: Baseline ~1.3 GB vs Pretzel ~183 MB for N = 5M.
        assert baseline.client_storage_bytes > 1e9
        assert pretzel.client_storage_bytes < 0.25e9
        assert baseline.client_storage_bytes / pretzel.client_storage_bytes > 5

    def test_spam_provider_cpu_ordering(self, constants):
        workload = WorkloadParameters.spam_default()
        noprv = estimate_noprv(constants, workload)
        baseline = estimate_baseline(constants, workload)
        pretzel = estimate_pretzel(constants, workload)
        # §6.1: Pretzel provider CPU is ~0.17x Baseline's and comparable to NoPriv.
        assert pretzel.email_provider_seconds < baseline.email_provider_seconds
        assert pretzel.email_provider_seconds < 3 * noprv.email_provider_seconds

    def test_spam_network_overhead_small_multiple_of_email(self, constants):
        workload = WorkloadParameters.spam_default()
        pretzel = estimate_pretzel(constants, workload)
        overhead = pretzel.email_network_bytes - workload.email_bytes
        # §6.1: ~19.6 KB of overhead per email.
        assert 10_000 < overhead < 40_000

    def test_topic_network_matches_figure_11(self, constants):
        workload = WorkloadParameters.topics_default()
        baseline = estimate_baseline(constants, workload)
        pretzel = estimate_pretzel(constants, workload)
        # Fig. 11: Baseline ~8 MB, Pretzel (B'=20) ~402 KB of protocol bytes.
        assert baseline.email_network_bytes - workload.email_bytes > 5e6
        assert pretzel.email_network_bytes - workload.email_bytes < 1e6

    def test_topic_provider_cpu_close_to_noprv_with_decomposition(self, constants):
        workload = WorkloadParameters.topics_default()
        noprv = estimate_noprv(constants, workload)
        pretzel = estimate_pretzel(constants, workload)
        baseline = estimate_baseline(constants, workload)
        # Fig. 10: with B' = 20 Pretzel is within ~2x of NoPriv and far below Baseline.
        assert pretzel.email_provider_seconds < 3 * noprv.email_provider_seconds
        assert pretzel.email_provider_seconds < baseline.email_provider_seconds / 10

    def test_decomposition_is_what_saves_topics(self, constants):
        with_decomposition = estimate_pretzel(constants, WorkloadParameters.topics_default())
        without = estimate_pretzel(
            constants,
            WorkloadParameters(model_features=100_000, categories=2048, candidate_topics=None),
        )
        assert without.email_network_bytes > 5 * with_decomposition.email_network_bytes
        assert without.email_provider_seconds > 5 * with_decomposition.email_provider_seconds

    def test_feature_selection_reduces_storage(self, constants):
        full = estimate_pretzel(constants, WorkloadParameters(model_features=100_000, categories=2048))
        selected = estimate_pretzel(
            constants,
            WorkloadParameters(model_features=100_000, selected_features=25_000, categories=2048),
        )
        assert selected.client_storage_bytes < full.client_storage_bytes


class TestFormattingAndMeasurement:
    def test_estimate_all_and_format(self, constants):
        estimates = estimate_all(constants, WorkloadParameters.spam_default())
        assert [e.arm for e in estimates] == ["noprv", "baseline", "pretzel"]
        table = format_table(estimates)
        assert "pretzel" in table and "baseline" in table

    def test_as_row_keys(self):
        row = CostEstimate(arm="x").as_row()
        assert set(row) >= {"arm", "email_provider_ms", "client_storage_MB"}

    def test_measure_local_produces_plausible_constants(self):
        measured = MicrobenchmarkConstants.measure_local(quick=True)
        assert measured.xpir_encrypt_seconds > 0
        assert measured.xpir_decrypt_seconds > 0
        assert measured.paillier_decrypt_seconds > 0
        assert measured.xpir_ciphertext_bytes > 1000
