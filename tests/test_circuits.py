"""Tests for the boolean-circuit builder and the Pretzel-specific circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.circuits import CircuitBuilder, SpamCircuit, TopicCircuit
from repro.exceptions import CircuitError
from repro.utils.bitops import bits_to_int, int_to_bits

WIDTH = 12
WORD = st.integers(min_value=0, max_value=2**WIDTH - 1)


def _run_word_op(build_outputs, a, b):
    builder = CircuitBuilder()
    a_wires = builder.garbler_input(WIDTH)
    b_wires = builder.evaluator_input(WIDTH)
    outputs = build_outputs(builder, a_wires, b_wires)
    circuit = builder.build(outputs if isinstance(outputs, list) else [outputs])
    result = circuit.evaluate_plain(int_to_bits(a, WIDTH), int_to_bits(b, WIDTH))
    return result, circuit


class TestGadgets:
    @given(WORD, WORD)
    @settings(max_examples=30, deadline=None)
    def test_adder(self, a, b):
        bits, _ = _run_word_op(lambda c, x, y: c.add_words(x, y), a, b)
        assert bits_to_int(bits) == (a + b) % (1 << WIDTH)

    @given(WORD, WORD)
    @settings(max_examples=30, deadline=None)
    def test_subtractor(self, a, b):
        bits, _ = _run_word_op(lambda c, x, y: c.subtract_words(x, y), a, b)
        assert bits_to_int(bits) == (a - b) % (1 << WIDTH)

    @given(WORD, WORD)
    @settings(max_examples=30, deadline=None)
    def test_greater_than(self, a, b):
        bits, _ = _run_word_op(lambda c, x, y: [c.greater_than(x, y)], a, b)
        assert bits[0] == int(a > b)

    @given(WORD, WORD)
    @settings(max_examples=30, deadline=None)
    def test_greater_or_equal(self, a, b):
        bits, _ = _run_word_op(lambda c, x, y: [c.greater_or_equal(x, y)], a, b)
        assert bits[0] == int(a >= b)

    @given(WORD, WORD, st.integers(min_value=0, max_value=1))
    @settings(max_examples=30, deadline=None)
    def test_mux_word(self, a, b, select):
        builder = CircuitBuilder()
        a_wires = builder.garbler_input(WIDTH)
        b_wires = builder.garbler_input(WIDTH)
        select_wire = builder.evaluator_input(1)
        outputs = builder.mux_word(select_wire[0], a_wires, b_wires)
        circuit = builder.build(outputs)
        bits = circuit.evaluate_plain(int_to_bits(a, WIDTH) + int_to_bits(b, WIDTH), [select])
        assert bits_to_int(bits) == (b if select else a)

    def test_or_gate_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                builder = CircuitBuilder()
                wa = builder.garbler_input(1)
                wb = builder.evaluator_input(1)
                circuit = builder.build([builder.or_(wa[0], wb[0])])
                assert circuit.evaluate_plain([a], [b]) == [a | b]

    def test_xor_gates_are_free_of_and(self):
        builder = CircuitBuilder()
        a = builder.garbler_input(8)
        b = builder.evaluator_input(8)
        outputs = [builder.xor(x, y) for x, y in zip(a, b)]
        circuit = builder.build(outputs)
        assert circuit.and_count == 0
        assert circuit.xor_count == 8


class TestBuilderValidation:
    def test_unassigned_wire_rejected(self):
        builder = CircuitBuilder()
        builder.garbler_input(1)
        with pytest.raises(CircuitError):
            builder.xor(0, 99)

    def test_output_must_be_assigned(self):
        builder = CircuitBuilder()
        builder.garbler_input(1)
        with pytest.raises(CircuitError):
            builder.build([5])

    def test_evaluate_plain_checks_input_lengths(self):
        builder = CircuitBuilder()
        a = builder.garbler_input(2)
        b = builder.evaluator_input(2)
        circuit = builder.build([builder.xor(a[0], b[0])])
        with pytest.raises(CircuitError):
            circuit.evaluate_plain([1], [0, 0])

    def test_mismatched_adder_widths_rejected(self):
        builder = CircuitBuilder()
        a = builder.garbler_input(3)
        b = builder.evaluator_input(4)
        with pytest.raises(CircuitError):
            builder.add_words(a, b)

    def test_argmax_empty_rejected(self):
        builder = CircuitBuilder()
        with pytest.raises(CircuitError):
            builder.argmax([], [])


class TestSpamCircuit:
    @given(
        st.integers(min_value=0, max_value=2**20 - 1),
        st.integers(min_value=0, max_value=2**20 - 1),
        st.integers(min_value=0, max_value=2**24 - 1),
        st.integers(min_value=0, max_value=2**24 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_plain_comparison(self, spam_score, ham_score, noise_spam, noise_ham):
        width = 24
        circuit = SpamCircuit.build(width)
        blinded_spam = (spam_score + noise_spam) % (1 << width)
        blinded_ham = (ham_score + noise_ham) % (1 << width)
        bits = circuit.circuit.evaluate_plain(
            circuit.garbler_bits(blinded_spam, blinded_ham),
            circuit.evaluator_bits(noise_spam, noise_ham),
        )
        assert SpamCircuit.decode_output(bits) == (spam_score > ham_score)

    def test_single_output_bit(self):
        circuit = SpamCircuit.build(8)
        assert len(circuit.circuit.outputs) == 1


class TestTopicCircuit:
    @given(st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=2, max_size=6), st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_plain_argmax(self, scores, data):
        width, index_bits = 24, 8
        count = len(scores)
        noises = [data.draw(st.integers(min_value=0, max_value=2**20 - 1)) for _ in range(count)]
        indices = [data.draw(st.integers(min_value=0, max_value=2**index_bits - 1)) for _ in range(count)]
        circuit = TopicCircuit.build(width, count, index_bits)
        blinded = [(score + noise) % (1 << width) for score, noise in zip(scores, noises)]
        bits = circuit.circuit.evaluate_plain(
            circuit.garbler_bits(noises, indices),
            circuit.evaluator_bits(blinded),
        )
        expected = indices[max(range(count), key=lambda j: (scores[j], -j))]
        assert TopicCircuit.decode_output(bits) == expected

    def test_ties_resolve_to_first(self):
        circuit = TopicCircuit.build(8, 3, 4)
        bits = circuit.circuit.evaluate_plain(
            circuit.garbler_bits([0, 0, 0], [5, 6, 7]),
            circuit.evaluator_bits([9, 9, 9]),
        )
        assert TopicCircuit.decode_output(bits) == 5

    def test_wrong_candidate_count_rejected(self):
        circuit = TopicCircuit.build(8, 3, 4)
        with pytest.raises(CircuitError):
            circuit.garbler_bits([1, 2], [3, 4, 5])
        with pytest.raises(CircuitError):
            circuit.evaluator_bits([1, 2])

    def test_zero_candidates_rejected(self):
        with pytest.raises(CircuitError):
            TopicCircuit.build(8, 0, 4)
