"""Unit and property tests for repro.utils.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PackingError, ParameterError
from repro.utils import bitops


class TestCeilDiv:
    def test_exact_division(self):
        assert bitops.ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert bitops.ceil_div(11, 5) == 3

    def test_zero_numerator(self):
        assert bitops.ceil_div(0, 7) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ParameterError):
            bitops.ceil_div(4, 0)


class TestIntBytes:
    def test_roundtrip_minimal_length(self):
        assert bitops.int_from_bytes(bitops.int_to_bytes(123456789)) == 123456789

    def test_explicit_length_pads(self):
        assert bitops.int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_value_too_large_for_length(self):
        with pytest.raises(ParameterError):
            bitops.int_to_bytes(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            bitops.int_to_bytes(-1)

    @given(st.integers(min_value=0, max_value=2**256))
    def test_roundtrip_property(self, value):
        assert bitops.int_from_bytes(bitops.int_to_bytes(value)) == value


class TestBits:
    def test_int_to_bits_little_endian(self):
        assert bitops.int_to_bits(6, 4) == [0, 1, 1, 0]

    def test_int_to_bits_reduces_modulo_width(self):
        assert bitops.int_to_bits(17, 4) == [1, 0, 0, 0]

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ParameterError):
            bitops.bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=64, max_value=80))
    def test_roundtrip_property(self, value, width):
        assert bitops.bits_to_int(bitops.int_to_bits(value, width)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200))
    def test_bits_bytes_roundtrip(self, bits):
        assert bitops.bytes_to_bits(bitops.bits_to_bytes(bits), len(bits)) == bits


class TestFieldPacking:
    def test_pack_then_unpack(self):
        values = [3, 0, 7, 5]
        packed = bitops.pack_fields(values, 3)
        assert bitops.unpack_fields(packed, 3, 4) == values

    def test_pack_rejects_overflowing_value(self):
        with pytest.raises(PackingError):
            bitops.pack_fields([8], 3)

    def test_unpack_extra_slots_are_zero(self):
        packed = bitops.pack_fields([5], 4)
        assert bitops.unpack_fields(packed, 4, 3) == [5, 0, 0]

    @given(
        st.integers(min_value=1, max_value=16).flatmap(
            lambda width: st.tuples(
                st.just(width),
                st.lists(st.integers(min_value=0, max_value=2**width - 1), min_size=1, max_size=20),
            )
        )
    )
    def test_roundtrip_property(self, width_and_values):
        width, values = width_and_values
        packed = bitops.pack_fields(values, width)
        assert bitops.unpack_fields(packed, width, len(values)) == values


class TestXorBytes:
    def test_xor_is_involution(self):
        left, right = b"abcdef", b"zyxwvu"
        assert bitops.xor_bytes(bitops.xor_bytes(left, right), right) == left

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            bitops.xor_bytes(b"ab", b"abc")
