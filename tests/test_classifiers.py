"""Tests for the classifiers: GR-NB, multinomial NB, LR, SVM, selection, metrics."""

import pytest

from repro.classify.logistic import BinaryLogisticRegression, MultinomialLogisticRegression
from repro.classify.metrics import accuracy, candidate_recall, confusion_counts, precision_recall
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes, MultinomialNaiveBayes
from repro.classify.selection import chi_square_scores, project_documents, select_features
from repro.classify.svm import LinearSVM, OneVsAllSVM
from repro.datasets import lingspam_like, newsgroups20_like, prepare_classification_data
from repro.exceptions import ClassifierError


@pytest.fixture(scope="module")
def spam_data():
    return prepare_classification_data(lingspam_like(scale=0.4, seed=5), boolean=True, max_features=2000)


@pytest.fixture(scope="module")
def topic_data():
    return prepare_classification_data(newsgroups20_like(scale=0.3, seed=6), max_features=2500)


def _spam_labels(labels):
    # Corpus category 1 is "spam"; the binary classifiers use label 1 = spam.
    return [1 if label == 1 else 0 for label in labels]


class TestGrahamRobinsonNB:
    @pytest.fixture(scope="class")
    def fitted(self, spam_data):
        classifier = GrahamRobinsonNaiveBayes(num_features=spam_data.num_features)
        classifier.fit(spam_data.train_vectors, _spam_labels(spam_data.train_labels))
        return classifier

    def test_linear_form_accuracy(self, fitted, spam_data):
        labels = _spam_labels(spam_data.test_labels)
        predictions = [int(fitted.predict_is_spam(vector)) for vector in spam_data.test_vectors]
        assert accuracy(predictions, labels) > 0.9

    def test_original_combining_rule_accuracy(self, fitted, spam_data):
        labels = _spam_labels(spam_data.test_labels)
        predictions = [int(fitted.predict_is_spam_original(vector)) for vector in spam_data.test_vectors]
        assert accuracy(predictions, labels) > 0.85

    def test_linear_model_shape(self, fitted, spam_data):
        model = fitted.to_linear_model()
        assert model.weights.shape == (spam_data.num_features, 2)
        assert model.category_names == ["spam", "ham"]

    def test_requires_both_classes(self, spam_data):
        classifier = GrahamRobinsonNaiveBayes(num_features=spam_data.num_features)
        with pytest.raises(ClassifierError):
            classifier.fit(spam_data.train_vectors[:5], [1] * 5)

    def test_unfitted_export_rejected(self):
        with pytest.raises(ClassifierError):
            GrahamRobinsonNaiveBayes(num_features=10).to_linear_model()


class TestMultinomialNB:
    @pytest.fixture(scope="class")
    def fitted(self, topic_data):
        classifier = MultinomialNaiveBayes(
            num_features=topic_data.num_features, category_names=topic_data.category_names
        )
        return classifier.fit(topic_data.train_vectors, topic_data.train_labels)

    def test_topic_accuracy(self, fitted, topic_data):
        model = fitted.to_linear_model()
        predictions = [model.predict(vector) for vector in topic_data.test_vectors]
        assert accuracy(predictions, topic_data.test_labels) > 0.8

    def test_candidate_recall_grows_with_candidates(self, fitted, topic_data):
        model = fitted.to_linear_model()
        recalls = []
        for count in (1, 3, 6):
            candidates = [model.top_categories(vector, count) for vector in topic_data.test_vectors]
            recalls.append(candidate_recall(candidates, topic_data.test_labels))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[-1] > 0.9

    def test_mismatched_lengths_rejected(self, topic_data):
        classifier = MultinomialNaiveBayes(num_features=topic_data.num_features)
        with pytest.raises(ClassifierError):
            classifier.fit(topic_data.train_vectors, topic_data.train_labels[:-1])


class TestLogisticRegression:
    def test_binary_spam_accuracy(self, spam_data):
        classifier = BinaryLogisticRegression(num_features=spam_data.num_features, epochs=6)
        classifier.fit(spam_data.train_vectors, _spam_labels(spam_data.train_labels))
        labels = _spam_labels(spam_data.test_labels)
        predictions = [int(classifier.predict_is_spam(vector)) for vector in spam_data.test_vectors]
        assert accuracy(predictions, labels) > 0.9

    def test_binary_linear_model_agrees_with_classifier(self, spam_data):
        classifier = BinaryLogisticRegression(num_features=spam_data.num_features, epochs=4)
        classifier.fit(spam_data.train_vectors, _spam_labels(spam_data.train_labels))
        model = classifier.to_linear_model()
        for vector in spam_data.test_vectors[:20]:
            assert (model.predict(vector) == 0) == classifier.predict_is_spam(vector)

    def test_multinomial_topic_accuracy(self, topic_data):
        classifier = MultinomialLogisticRegression(
            num_features=topic_data.num_features,
            num_categories=topic_data.num_categories,
            epochs=4,
            category_names=topic_data.category_names,
        )
        classifier.fit(topic_data.train_vectors, topic_data.train_labels)
        predictions = [classifier.predict(vector) for vector in topic_data.test_vectors]
        assert accuracy(predictions, topic_data.test_labels) > 0.75

    def test_unfitted_rejected(self):
        with pytest.raises(ClassifierError):
            BinaryLogisticRegression(num_features=5).predict_is_spam({0: 1})


class TestSvm:
    def test_binary_spam_accuracy(self, spam_data):
        classifier = LinearSVM(num_features=spam_data.num_features, epochs=6)
        classifier.fit(spam_data.train_vectors, _spam_labels(spam_data.train_labels))
        labels = _spam_labels(spam_data.test_labels)
        predictions = [int(classifier.predict_is_spam(vector)) for vector in spam_data.test_vectors]
        assert accuracy(predictions, labels) > 0.85

    def test_one_vs_all_topic_accuracy(self, topic_data):
        classifier = OneVsAllSVM(
            num_features=topic_data.num_features,
            num_categories=topic_data.num_categories,
            epochs=4,
            category_names=topic_data.category_names,
        )
        classifier.fit(topic_data.train_vectors, topic_data.train_labels)
        model = classifier.to_linear_model()
        predictions = [model.predict(vector) for vector in topic_data.test_vectors]
        assert accuracy(predictions, topic_data.test_labels) > 0.55

    def test_label_out_of_range_rejected(self, topic_data):
        classifier = OneVsAllSVM(num_features=topic_data.num_features, num_categories=2)
        with pytest.raises(ClassifierError):
            classifier.fit(topic_data.train_vectors, topic_data.train_labels)


class TestFeatureSelection:
    def test_scores_shape_and_nonnegativity(self, topic_data):
        scores = chi_square_scores(
            topic_data.train_vectors, topic_data.train_labels, topic_data.num_features
        )
        assert len(scores) == topic_data.num_features
        assert scores.min() >= 0

    def test_select_features_fraction(self, topic_data):
        keep = select_features(
            topic_data.train_vectors, topic_data.train_labels, topic_data.num_features, 0.25
        )
        assert len(keep) == int(round(0.25 * topic_data.num_features))
        assert keep == sorted(keep)

    def test_selection_preserves_most_accuracy(self, topic_data):
        keep = select_features(
            topic_data.train_vectors, topic_data.train_labels, topic_data.num_features, 0.25
        )
        projected_train = project_documents(topic_data.train_vectors, keep)
        projected_test = project_documents(topic_data.test_vectors, keep)
        full = MultinomialNaiveBayes(num_features=topic_data.num_features).fit(
            topic_data.train_vectors, topic_data.train_labels
        )
        reduced = MultinomialNaiveBayes(num_features=len(keep)).fit(
            projected_train, topic_data.train_labels
        )
        full_model, reduced_model = full.to_linear_model(), reduced.to_linear_model()
        full_accuracy = accuracy(
            [full_model.predict(v) for v in topic_data.test_vectors], topic_data.test_labels
        )
        reduced_accuracy = accuracy(
            [reduced_model.predict(v) for v in projected_test], topic_data.test_labels
        )
        assert reduced_accuracy > full_accuracy - 0.1

    def test_invalid_fraction_rejected(self, topic_data):
        with pytest.raises(ClassifierError):
            select_features(topic_data.train_vectors, topic_data.train_labels, topic_data.num_features, 0.0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_precision_recall(self):
        precision, recall = precision_recall([1, 1, 0, 0], [1, 0, 1, 0])
        assert precision == 0.5
        assert recall == 0.5

    def test_confusion_counts(self):
        counts = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert counts == {"tp": 1, "fp": 1, "fn": 1, "tn": 1}

    def test_candidate_recall(self):
        assert candidate_recall([[1, 2], [3, 4], [5]], [2, 9, 5]) == pytest.approx(2 / 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ClassifierError):
            accuracy([1], [1, 0])
        with pytest.raises(ClassifierError):
            precision_recall([1], [1, 0])
        with pytest.raises(ClassifierError):
            candidate_recall([[1]], [1, 2])
