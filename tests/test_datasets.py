"""Tests for the synthetic corpora and data preparation."""

import pytest

from repro.datasets import (
    SyntheticCorpusSpec,
    enron_like,
    generate_corpus,
    gmail_like,
    lingspam_like,
    newsgroups20_like,
    prepare_classification_data,
    rcv1_like,
    reuters_like,
    train_test_split,
)
from repro.exceptions import DatasetError


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        spec = SyntheticCorpusSpec(
            name="t", category_names=["a", "b"], documents_per_category=[10, 10], seed=1
        )
        assert generate_corpus(spec).documents == generate_corpus(spec).documents

    def test_different_seed_changes_corpus(self):
        base = dict(name="t", category_names=["a", "b"], documents_per_category=[10, 10])
        first = generate_corpus(SyntheticCorpusSpec(seed=1, **base))
        second = generate_corpus(SyntheticCorpusSpec(seed=2, **base))
        assert first.documents != second.documents

    def test_document_counts_respected(self):
        corpus = generate_corpus(
            SyntheticCorpusSpec(name="t", category_names=["a", "b", "c"], documents_per_category=[5, 7, 9])
        )
        assert len(corpus) == 21
        assert sorted(set(corpus.labels)) == [0, 1, 2]

    def test_invalid_spec_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticCorpusSpec(name="t", category_names=["a"], documents_per_category=[5])
        with pytest.raises(DatasetError):
            SyntheticCorpusSpec(
                name="t", category_names=["a", "b"], documents_per_category=[5], vocabulary_size=5000
            )

    @pytest.mark.parametrize(
        "factory,categories",
        [
            (lingspam_like, 2),
            (enron_like, 2),
            (gmail_like, 2),
            (newsgroups20_like, 20),
            (reuters_like, 30),
            (rcv1_like, 40),
        ],
    )
    def test_named_corpora_structure(self, factory, categories):
        corpus = factory(scale=0.2)
        assert corpus.category_count() == categories
        assert len(corpus) > 0
        assert max(corpus.labels) == categories - 1

    def test_categories_are_separable(self):
        # A basic sanity check that the topical-word structure is learnable.
        corpus = lingspam_like(scale=0.3)
        spam_words = set()
        ham_words = set()
        for document, label in zip(corpus.documents, corpus.labels):
            target = spam_words if label == 1 else ham_words
            target.update(document.split())
        assert spam_words - ham_words  # spam has vocabulary ham never uses


class TestSplitsAndPreparation:
    def test_split_sizes(self):
        corpus = gmail_like(scale=0.3)
        train, test = train_test_split(corpus, train_fraction=0.75)
        assert len(train) + len(test) == len(corpus)
        assert len(train) > len(test)

    def test_split_fraction_validation(self):
        corpus = gmail_like(scale=0.3)
        with pytest.raises(DatasetError):
            train_test_split(corpus, train_fraction=1.5)

    def test_prepare_classification_data(self):
        data = prepare_classification_data(gmail_like(scale=0.3), max_features=800, boolean=True)
        assert data.num_features <= 800
        assert len(data.train_vectors) == len(data.train_labels)
        assert len(data.test_vectors) == len(data.test_labels)
        assert all(set(vector.values()) <= {1} for vector in data.train_vectors[:10])

    def test_prepared_vocabulary_comes_from_training_half(self):
        data = prepare_classification_data(gmail_like(scale=0.3), max_features=500)
        assert data.extractor.num_features > 0
        assert data.num_categories == 2
