"""Tests for the canonical protocol-message serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParameterError
from repro.utils.serialization import canonical_dumps, canonical_loads, encoded_size


SIMPLE_VALUES = [
    None,
    True,
    False,
    0,
    -1,
    12345678901234567890,
    -(2**200),
    b"",
    b"\x00\xff bytes",
    "",
    "unicode κείμενο",
    3.14159,
    [],
    [1, "two", b"three", None],
    {},
    {"a": 1, "b": [2, 3], "c": {"nested": True}},
]


class TestRoundtrip:
    @pytest.mark.parametrize("value", SIMPLE_VALUES)
    def test_known_values(self, value):
        assert canonical_loads(canonical_dumps(value)) == value

    def test_tuples_become_lists(self):
        assert canonical_loads(canonical_dumps((1, 2))) == [1, 2]

    def test_dict_key_order_is_canonical(self):
        a = canonical_dumps({"x": 1, "y": 2})
        b = canonical_dumps({"y": 2, "x": 1})
        assert a == b

    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.binary(max_size=64),
                st.text(max_size=32),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=5),
                st.dictionaries(st.text(max_size=8), children, max_size=5),
            ),
            max_leaves=20,
        )
    )
    def test_roundtrip_property(self, value):
        assert canonical_loads(canonical_dumps(value)) == value


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(ParameterError):
            canonical_dumps(object())

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(ParameterError):
            canonical_dumps({1: "x"})

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ParameterError):
            canonical_loads(canonical_dumps(1) + b"junk")

    def test_truncated_input_rejected(self):
        encoded = canonical_dumps([1, 2, 3])
        with pytest.raises(ParameterError):
            canonical_loads(encoded[:-2])

    def test_unknown_tag_rejected(self):
        with pytest.raises(ParameterError):
            canonical_loads(b"Z")


class TestSizes:
    def test_encoded_size_matches_dumps(self):
        value = {"key": [1, 2, 3], "blob": b"x" * 100}
        assert encoded_size(value) == len(canonical_dumps(value))

    def test_bigger_payload_bigger_size(self):
        assert encoded_size(b"x" * 1000) > encoded_size(b"x" * 10)
