"""Sharded serving stack tests: windowed scheduling, worker processes, async pump.

The §6.3 scaling layers must never change protocol outputs — only *when*
decrypts run and *where* sessions live.  These tests pin:

* :class:`DecryptScheduler` trigger semantics (burst window, size, time);
* output equivalence of the windowed serving loop against sequential runs
  under every window setting, including ``window_bursts=1`` (which must
  degenerate to the per-burst batching of the PR 2 loop);
* the sharded runtime: stable partition, results identical to sequential,
  and a forced mid-window shard restart that recomputes, never corrupts;
* the asyncio pump: sessions over real TCP produce the same verdicts, with
  cross-connection decrypt batching.
"""

import asyncio

import pytest

from repro.core.runtime import (
    DecryptScheduler,
    ProviderRuntime,
    ShardedRuntime,
    shard_of_address,
    spam_job,
    topic_job,
)
from repro.exceptions import ProtocolError
from repro.twopc.session import AsyncSessionPump
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.topics import TopicExtractionProtocol
from repro.twopc.transport import AsyncFramedChannel, AsyncTcpTransport
from repro.twopc.wire import WireCodec

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
    {i: 1 for i in range(0, 200, 7)},
    {3: 1, 77: 1},
    {i: 1 for i in range(1, 200, 23)},
]

TOPIC_EMAILS = [
    {2: 1, 3: 2, 77: 1},
    {150: 4, 151: 1, 10: 2},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


@pytest.fixture(scope="module")
def spam_truth(small_spam_model):
    return [small_spam_model.predict_is_spam(features) for features in SPAM_EMAILS]


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _FakeEntry:
    """Stands in for a parked decryption in scheduler unit tests."""

    class _Request:
        def __init__(self, scheme, keypair, count):
            self.scheme = scheme
            self.keypair = keypair
            self.ciphertexts = [object()] * count

    def __init__(self, keypair="kp", count=1):
        self.request = self._Request(scheme="scheme", keypair=keypair, count=count)


class TestDecryptScheduler:
    def test_burst_window_ages_by_end_burst(self):
        scheduler = DecryptScheduler(window_bursts=2)
        scheduler.enqueue(_FakeEntry())
        assert scheduler.take_due() == []
        scheduler.end_burst()
        assert scheduler.take_due() == []  # one burst old, window is two
        scheduler.end_burst()
        due = scheduler.take_due()
        assert len(due) == 1 and len(due[0]) == 1
        assert scheduler.pending_sessions() == 0

    def test_size_trigger_fires_within_a_burst(self):
        scheduler = DecryptScheduler(window_bursts=10, max_pending_ciphertexts=3)
        scheduler.enqueue(_FakeEntry(count=2))
        assert scheduler.take_due() == []
        scheduler.enqueue(_FakeEntry(count=1))
        assert len(scheduler.take_due()) == 1

    def test_time_trigger_uses_clock(self):
        clock = _FakeClock()
        scheduler = DecryptScheduler(window_bursts=10, max_delay_seconds=5.0, clock=clock)
        scheduler.enqueue(_FakeEntry())
        assert scheduler.take_due() == []
        clock.now = 4.9
        assert scheduler.take_due() == []
        clock.now = 5.0
        assert len(scheduler.take_due()) == 1

    def test_windows_are_per_keypair(self):
        scheduler = DecryptScheduler(window_bursts=1, max_pending_ciphertexts=2)
        scheduler.enqueue(_FakeEntry(keypair="a"))
        scheduler.enqueue(_FakeEntry(keypair="b"))
        assert scheduler.pending_sessions() == 2
        scheduler.enqueue(_FakeEntry(keypair="a"))
        due = scheduler.take_due()
        assert [len(entries) for entries in due] == [2]  # only keypair a is full
        assert scheduler.pending_ciphertexts() == 1

    def test_flush_empties_everything(self):
        scheduler = DecryptScheduler(window_bursts=5)
        for keypair in ("a", "b"):
            scheduler.enqueue(_FakeEntry(keypair=keypair))
        assert len(scheduler.flush()) == 2
        assert scheduler.flush() == []

    def test_invalid_settings_rejected(self):
        with pytest.raises(ProtocolError):
            DecryptScheduler(window_bursts=0)
        with pytest.raises(ProtocolError):
            DecryptScheduler(max_pending_ciphertexts=0)
        with pytest.raises(ProtocolError):
            DecryptScheduler(max_delay_seconds=-1.0)


class TestWindowedServing:
    def _serve_in_bursts(self, protocol, setup, scheduler, burst_size=2):
        """Feed SPAM_EMAILS in bursts; return verdicts by label plus the runtime."""
        runtime = ProviderRuntime(scheduler=scheduler)
        pool = protocol.make_ot_pool(setup)
        finished = []
        for start in range(0, len(SPAM_EMAILS), burst_size):
            jobs = [
                spam_job(protocol, setup, features, label=start + offset, ot_pool=pool)
                for offset, features in enumerate(SPAM_EMAILS[start : start + burst_size])
            ]
            finished += runtime.serve_burst(jobs)
        finished += runtime.drain()
        verdicts = {job.label: job.client.is_spam for job in finished}
        return [verdicts[index] for index in range(len(SPAM_EMAILS))], runtime

    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda: DecryptScheduler(window_bursts=1),
            lambda: DecryptScheduler(window_bursts=2),
            lambda: DecryptScheduler(window_bursts=100),  # only drain() closes it
            lambda: DecryptScheduler(window_bursts=100, max_pending_ciphertexts=3),
            lambda: DecryptScheduler(window_bursts=100, max_delay_seconds=0.0),
        ],
        ids=["bursts1", "bursts2", "drain-only", "size3", "delay0"],
    )
    def test_every_window_setting_matches_sequential(
        self, spam_setup, spam_truth, make_scheduler
    ):
        protocol, setup = spam_setup
        verdicts, _ = self._serve_in_bursts(protocol, setup, make_scheduler())
        assert verdicts == spam_truth

    def test_window_one_degenerates_to_per_burst_batching(self, spam_setup, spam_truth):
        # window_bursts=1 is PR 2 behaviour: every burst completes before
        # serve_burst returns, with one batched decrypt per burst.
        protocol, setup = spam_setup
        runtime = ProviderRuntime()  # default scheduler: window_bursts=1
        pool = protocol.make_ot_pool(setup)
        per_email = setup.encrypted_model.result_ciphertext_count()
        for start in range(0, len(SPAM_EMAILS), 3):
            burst = SPAM_EMAILS[start : start + 3]
            jobs = [
                spam_job(protocol, setup, features, label=index, ot_pool=pool)
                for index, features in enumerate(burst)
            ]
            finished = runtime.serve_burst(jobs)
            assert len(finished) == len(burst)
            assert runtime.outstanding_jobs() == 0
        assert runtime.decrypt_batch_sizes == [3 * per_email, 3 * per_email]
        assert runtime.drain() == []

    def test_wide_window_holds_work_across_bursts(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        scheduler = DecryptScheduler(window_bursts=3)
        verdicts, runtime = self._serve_in_bursts(protocol, setup, scheduler)
        assert verdicts == spam_truth
        per_email = setup.encrypted_model.result_ciphertext_count()
        # 3 bursts of 2 emails folded into one decrypt; no per-burst calls.
        assert runtime.decrypt_batch_sizes == [len(SPAM_EMAILS) * per_email]

    def test_drain_on_idle_runtime_is_empty(self):
        runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=4))
        assert runtime.drain() == []
        assert runtime.outstanding_jobs() == 0

    def test_time_window_through_serving_loop_pinned_to_fake_clock(
        self, spam_setup, spam_truth
    ):
        # The wall-clock trigger end-to-end, with zero real time involved: the
        # window must hold while the injected clock is short of the deadline
        # and close (finishing the parked jobs) the poll after it passes.
        protocol, setup = spam_setup
        clock = _FakeClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=100, max_delay_seconds=5.0, clock=clock
            )
        )
        pool = protocol.make_ot_pool(setup)
        jobs = [
            spam_job(protocol, setup, features, label=index, ot_pool=pool)
            for index, features in enumerate(SPAM_EMAILS[:2])
        ]
        assert runtime.serve_burst(jobs) == []  # parked; clock at 0.0
        clock.now = 4.999
        assert runtime.serve_burst([]) == []  # still inside the window
        clock.now = 5.0
        finished = runtime.serve_burst([])
        assert sorted(job.label for job in finished) == [0, 1]
        verdicts = {job.label: job.client.is_spam for job in finished}
        assert [verdicts[0], verdicts[1]] == spam_truth[:2]
        assert runtime.outstanding_jobs() == 0


class TestShardedRuntime:
    def test_partition_is_stable_and_total(self):
        addresses = [f"user{i}@example.com" for i in range(64)]
        shards = [shard_of_address(address, 4) for address in addresses]
        assert shards == [shard_of_address(address, 4) for address in addresses]
        assert set(shards) == {0, 1, 2, 3}  # 64 addresses cover 4 shards w.h.p.
        assert all(0 <= shard < 4 for shard in shards)

    def test_sharded_spam_matches_sequential(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        addresses = ["alice@example.com", "bob@example.com", "carol@example.com"]
        with ShardedRuntime(num_shards=2, window_bursts=2) as runtime:
            for address in addresses:
                runtime.register_spam(address, protocol, setup)
            bursts = [
                [(addresses[index % 3], features) for index, features in burst]
                for burst in (
                    list(enumerate(SPAM_EMAILS[:3])),
                    list(enumerate(SPAM_EMAILS[3:], start=3)),
                )
            ]
            results = runtime.run_spam_stream(bursts)
            assert [result.is_spam for result in results] == spam_truth
            stats = runtime.shard_stats()
        assert sum(stat["mailboxes"] for stat in stats) == len(addresses)
        assert all(stat["outstanding_jobs"] == 0 for stat in stats)

    def test_sharded_topics_match_sequential(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        truths = [small_topic_model.predict(features) for features in TOPIC_EMAILS]
        candidates = [sorted({truth, 0, 1, 2}) for truth in truths]
        with ShardedRuntime(num_shards=2) as runtime:
            runtime.register_topics("dave@example.com", protocol, setup)
            job_ids = runtime.submit_topics(
                [
                    ("dave@example.com", features, candidate_list)
                    for features, candidate_list in zip(TOPIC_EMAILS, candidates)
                ]
            )
            runtime.drain()
            extracted = [runtime.take_result(job_id).extracted_topic for job_id in job_ids]
        assert extracted == truths

    def test_forced_mid_window_restart_recomputes_open_window(
        self, spam_setup, spam_truth
    ):
        # Kill a worker while its decrypt window is open: the parent must
        # replay registrations, resubmit the in-flight emails, and the final
        # outputs must match the sequential truth exactly.
        protocol, setup = spam_setup
        address = "restartable@example.com"
        with ShardedRuntime(num_shards=2, window_bursts=100) as runtime:
            runtime.register_spam(address, protocol, setup)
            first_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS[:3]])
            assert runtime.outstanding_count() == 3  # parked inside the window
            resubmitted = runtime.restart_shard(runtime.shard_of(address))
            assert resubmitted == 3
            second_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS[3:]])
            runtime.drain()
            verdicts = [
                runtime.take_result(job_id).is_spam for job_id in first_ids + second_ids
            ]
        assert verdicts == spam_truth

    def test_restart_of_idle_shard_is_harmless(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        address = "idle-restart@example.com"
        with ShardedRuntime(num_shards=2) as runtime:
            runtime.register_spam(address, protocol, setup)
            assert runtime.restart_shard(runtime.shard_of(address)) == 0
            results = runtime.run_spam_stream([[(address, SPAM_EMAILS[0])]])
            assert results[0].is_spam == spam_truth[0]

    def test_unregistered_mailbox_error_surfaces_in_parent(self, spam_setup):
        with ShardedRuntime(num_shards=1) as runtime:
            with pytest.raises(ProtocolError, match="rejected|no spam mailbox"):
                runtime.submit_spam([("ghost@example.com", SPAM_EMAILS[0])])

    def test_take_result_before_drain_raises(self, spam_setup):
        protocol, setup = spam_setup
        address = "early@example.com"
        with ShardedRuntime(num_shards=1, window_bursts=100) as runtime:
            runtime.register_spam(address, protocol, setup)
            (job_id,) = runtime.submit_spam([(address, SPAM_EMAILS[0])])
            with pytest.raises(ProtocolError, match="no result"):
                runtime.take_result(job_id)
            runtime.drain()
            assert runtime.take_result(job_id) is not None

    def test_closed_runtime_rejects_work(self, spam_setup):
        runtime = ShardedRuntime(num_shards=1)
        runtime.close()
        with pytest.raises(ProtocolError):
            runtime.submit_spam([("late@example.com", SPAM_EMAILS[0])])
        runtime.close()  # idempotent


class TestAsyncSessionPump:
    def _run_tcp_sessions(self, protocol, setup, feature_sets, window_seconds=0.02):
        """Run N spam sessions over real TCP through one provider pump."""

        async def scenario():
            provider_pump = AsyncSessionPump(window_seconds=window_seconds)
            client_pump = AsyncSessionPump()
            pool = protocol.make_ot_pool(setup)

            def codec():
                return WireCodec(scheme=protocol.scheme, public_key=setup.keypair.public)

            async def handle_connection(transport):
                channel = AsyncFramedChannel(transport, codec())
                session = protocol.provider_session(setup, ot_pool=pool)
                await provider_pump.run_session(channel, "provider", session)

            server = await AsyncTcpTransport.start_server(handle_connection, port=0)
            port = server.sockets[0].getsockname()[1]

            async def run_client(features):
                transport = await AsyncTcpTransport.connect("127.0.0.1", port)
                channel = AsyncFramedChannel(transport, codec())
                session = protocol.client_session(setup, features, ot_pool=pool)
                await client_pump.run_session(channel, "client", session)
                verdict = session.is_spam
                await channel.aclose()
                return verdict, channel.total_bytes()

            try:
                outcomes = await asyncio.gather(
                    *(run_client(features) for features in feature_sets)
                )
            finally:
                server.close()
                await server.wait_closed()
            return outcomes, provider_pump.decrypt_batch_sizes

        return asyncio.run(scenario())

    def test_single_session_over_tcp_matches_plain(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        outcomes, batches = self._run_tcp_sessions(protocol, setup, SPAM_EMAILS[:1])
        assert [verdict for verdict, _ in outcomes] == spam_truth[:1]
        assert all(total_bytes > 0 for _, total_bytes in outcomes)
        assert batches == [setup.encrypted_model.result_ciphertext_count()]

    def test_concurrent_tcp_sessions_batch_decrypts(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        outcomes, batches = self._run_tcp_sessions(protocol, setup, SPAM_EMAILS[:3])
        assert [verdict for verdict, _ in outcomes] == spam_truth[:3]
        # All three connections' decrypts folded into one windowed batch.
        per_email = setup.encrypted_model.result_ciphertext_count()
        assert sum(batches) == 3 * per_email
        assert max(batches) >= 2 * per_email

    def test_invalid_pump_settings_rejected(self):
        with pytest.raises(ProtocolError):
            AsyncSessionPump(window_seconds=-0.1)
        with pytest.raises(ProtocolError):
            AsyncSessionPump(max_pending_ciphertexts=0)
