"""Sharded serving stack tests: windowed scheduling, worker processes, async pump.

The §6.3 scaling layers must never change protocol outputs — only *when*
decrypts run and *where* sessions live.  These tests pin:

* :class:`DecryptScheduler` trigger semantics (burst window, size, time);
* output equivalence of the windowed serving loop against sequential runs
  under every window setting, including ``window_bursts=1`` (which must
  degenerate to the per-burst batching of the PR 2 loop);
* the sharded runtime: stable partition, results identical to sequential,
  and a forced mid-window shard restart that recomputes, never corrupts;
* the asyncio pump: sessions over real TCP produce the same verdicts, with
  cross-connection decrypt batching.
"""

import asyncio
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runtime import (
    AdaptiveDecryptScheduler,
    DecryptScheduler,
    ProviderRuntime,
    ShardedRuntime,
    shard_of_address,
    spam_job,
    topic_job,
)
from repro.exceptions import ProtocolError
from repro.obs import scoped_telemetry
from repro.twopc.session import AsyncSessionPump
from repro.utils.timing import AdaptiveWindowController
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.topics import TopicExtractionProtocol
from repro.twopc.transport import AsyncFramedChannel, AsyncTcpTransport
from repro.twopc.wire import WireCodec

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
    {i: 1 for i in range(0, 200, 7)},
    {3: 1, 77: 1},
    {i: 1 for i in range(1, 200, 23)},
]

TOPIC_EMAILS = [
    {2: 1, 3: 2, 77: 1},
    {150: 4, 151: 1, 10: 2},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


@pytest.fixture(scope="module")
def spam_truth(small_spam_model):
    return [small_spam_model.predict_is_spam(features) for features in SPAM_EMAILS]


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class _FakeEntry:
    """Stands in for a parked decryption in scheduler unit tests."""

    class _Request:
        def __init__(self, scheme, keypair, count):
            self.scheme = scheme
            self.keypair = keypair
            self.ciphertexts = [object()] * count

    def __init__(self, keypair="kp", count=1, job=None):
        self.request = self._Request(scheme="scheme", keypair=keypair, count=count)
        self.job = job


class TestDecryptScheduler:
    def test_burst_window_ages_by_end_burst(self):
        scheduler = DecryptScheduler(window_bursts=2)
        scheduler.enqueue(_FakeEntry())
        assert scheduler.take_due() == []
        scheduler.end_burst()
        assert scheduler.take_due() == []  # one burst old, window is two
        scheduler.end_burst()
        due = scheduler.take_due()
        assert len(due) == 1 and len(due[0]) == 1
        assert scheduler.pending_sessions() == 0

    def test_size_trigger_fires_within_a_burst(self):
        scheduler = DecryptScheduler(window_bursts=10, max_pending_ciphertexts=3)
        scheduler.enqueue(_FakeEntry(count=2))
        assert scheduler.take_due() == []
        scheduler.enqueue(_FakeEntry(count=1))
        assert len(scheduler.take_due()) == 1

    def test_time_trigger_uses_clock(self):
        clock = _FakeClock()
        scheduler = DecryptScheduler(window_bursts=10, max_delay_seconds=5.0, clock=clock)
        scheduler.enqueue(_FakeEntry())
        assert scheduler.take_due() == []
        clock.now = 4.9
        assert scheduler.take_due() == []
        clock.now = 5.0
        assert len(scheduler.take_due()) == 1

    def test_windows_are_per_keypair(self):
        scheduler = DecryptScheduler(window_bursts=1, max_pending_ciphertexts=2)
        scheduler.enqueue(_FakeEntry(keypair="a"))
        scheduler.enqueue(_FakeEntry(keypair="b"))
        assert scheduler.pending_sessions() == 2
        scheduler.enqueue(_FakeEntry(keypair="a"))
        due = scheduler.take_due()
        assert [len(entries) for entries in due] == [2]  # only keypair a is full
        assert scheduler.pending_ciphertexts() == 1

    def test_flush_empties_everything(self):
        scheduler = DecryptScheduler(window_bursts=5)
        for keypair in ("a", "b"):
            scheduler.enqueue(_FakeEntry(keypair=keypair))
        assert len(scheduler.flush()) == 2
        assert scheduler.flush() == []

    def test_invalid_settings_rejected(self):
        with pytest.raises(ProtocolError):
            DecryptScheduler(window_bursts=0)
        with pytest.raises(ProtocolError):
            DecryptScheduler(max_pending_ciphertexts=0)
        with pytest.raises(ProtocolError):
            DecryptScheduler(max_delay_seconds=-1.0)

    def test_next_deadline_tracks_oldest_window(self):
        clock = _FakeClock()
        scheduler = DecryptScheduler(window_bursts=10, max_delay_seconds=2.0, clock=clock)
        assert scheduler.next_deadline() is None  # nothing parked
        scheduler.enqueue(_FakeEntry(keypair="a"))
        clock.now = 1.5
        scheduler.enqueue(_FakeEntry(keypair="b"))
        assert scheduler.next_deadline() == 2.0  # keypair a opened at 0.0
        clock.now = 2.0
        assert len(scheduler.take_due()) == 1  # only a is due
        assert scheduler.next_deadline() == 3.5  # b opened at 1.5

    def test_next_deadline_none_without_time_trigger(self):
        scheduler = DecryptScheduler(window_bursts=10)
        scheduler.enqueue(_FakeEntry())
        assert scheduler.next_deadline() is None

    def test_latency_ledger_records_enqueue_to_fired_ages(self):
        clock = _FakeClock()
        scheduler = DecryptScheduler(window_bursts=10, max_delay_seconds=1.0, clock=clock)
        scheduler.enqueue(_FakeEntry())
        clock.now = 0.4
        scheduler.enqueue(_FakeEntry())
        clock.now = 1.0
        assert len(scheduler.take_due()) == 1
        assert scheduler.decrypt_ages == [1.0, pytest.approx(0.6)]

    def test_latency_ledger_covers_flush_and_survives_detach(self):
        clock = _FakeClock()
        scheduler = DecryptScheduler(window_bursts=10, clock=clock)
        detached_job = object()
        scheduler.enqueue(_FakeEntry(job=detached_job))
        clock.now = 0.25
        scheduler.enqueue(_FakeEntry(job=object()))
        assert len(scheduler.detach_job(detached_job)) == 1
        assert scheduler.pending_ciphertexts() == 1
        clock.now = 1.0
        assert len(scheduler.flush()) == 1
        # Only the non-detached entry is released; its age is intact.
        assert scheduler.decrypt_ages == [0.75]


class TestAdaptiveDecryptScheduler:
    """The control loop, driven entirely by a fake clock."""

    def _ramp(self, scheduler, clock, gap, count=20):
        for _ in range(count):
            clock.now += gap
            scheduler.enqueue(_FakeEntry())

    def test_fast_arrivals_widen_the_window(self):
        clock = _FakeClock()
        scheduler = AdaptiveDecryptScheduler(
            min_delay_seconds=0.002,
            max_delay_seconds=0.25,
            target_batch_ciphertexts=16,
            clock=clock,
        )
        idle_delay = scheduler.max_delay_seconds
        assert idle_delay == pytest.approx(0.002)  # no traffic: minimum delay
        # ~200 ciphertexts/s sustained, far above target/cap = 64/s: the
        # window opens up (the ramp spans several observation intervals).
        self._ramp(scheduler, clock, gap=0.005, count=80)
        scheduler.take_due()  # consume the hot windows so only the knob remains
        assert scheduler.max_delay_seconds == pytest.approx(0.25)

    def test_idle_decay_shrinks_the_window_at_polls(self):
        clock = _FakeClock()
        scheduler = AdaptiveDecryptScheduler(
            min_delay_seconds=0.002,
            max_delay_seconds=0.25,
            target_batch_ciphertexts=16,
            clock=clock,
        )
        self._ramp(scheduler, clock, gap=0.005, count=80)
        hot_delay = scheduler.max_delay_seconds
        clock.now += 10.0  # a long lull: ~40 half-lives of decay
        scheduler.take_due()
        assert scheduler.max_delay_seconds < hot_delay
        assert scheduler.max_delay_seconds == pytest.approx(0.002, abs=1e-3)

    def test_slow_stream_releases_promptly(self):
        # One email every 2 s can never fill a batch: the window must sit at
        # ~min_delay so each email fires at most a few ms after parking.
        clock = _FakeClock()
        scheduler = AdaptiveDecryptScheduler(
            min_delay_seconds=0.002, max_delay_seconds=0.25, clock=clock
        )
        for _ in range(5):
            clock.now += 2.0
            scheduler.enqueue(_FakeEntry())
            deadline = scheduler.next_deadline()
            assert deadline is not None and deadline - clock.now < 0.01
            clock.now = deadline
            assert len(scheduler.take_due()) == 1
        assert all(age < 0.01 for age in scheduler.decrypt_ages)

    def test_arrival_clump_does_not_widen_the_window(self):
        # Three emails with millisecond gaps read as hundreds/s to a
        # per-gap estimator — one clump would saturate the controller and
        # park the clump itself behind the widest window.  The aggregated
        # estimator must see a trickle and keep the window tight.
        clock = _FakeClock()
        scheduler = AdaptiveDecryptScheduler(
            min_delay_seconds=0.002, max_delay_seconds=0.25, clock=clock
        )
        clock.now = 1.0
        for _ in range(3):
            clock.now += 0.001
            scheduler.enqueue(_FakeEntry())
        assert scheduler.max_delay_seconds < 0.01

    def test_window_history_traces_the_control_loop(self):
        clock = _FakeClock()
        scheduler = AdaptiveDecryptScheduler(clock=clock)
        self._ramp(scheduler, clock, gap=0.01, count=3)
        assert len(scheduler.window_history) == 3
        times = [when for when, _ in scheduler.window_history]
        assert times == sorted(times)

    def test_observed_rate_reads_the_estimator(self):
        clock = _FakeClock()
        scheduler = AdaptiveDecryptScheduler(clock=clock)
        assert scheduler.observed_rate() == 0.0
        self._ramp(scheduler, clock, gap=0.01)
        assert scheduler.observed_rate() > 0.0


class TestSchedulerTriggerInvariants:
    """Property test: trigger guarantees hold under any interleaving."""

    _OPS = st.lists(
        st.one_of(
            st.tuples(
                st.just("enqueue"), st.sampled_from(["a", "b", "c"]), st.integers(1, 4)
            ),
            st.tuples(st.just("end_burst")),
            st.tuples(st.just("advance"), st.floats(0.01, 1.5)),
            st.tuples(st.just("poll")),
            st.tuples(st.just("detach")),
        ),
        max_size=40,
    )

    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_age_trigger_and_bookkeeping(self, ops):
        clock = _FakeClock()
        scheduler = DecryptScheduler(
            window_bursts=10**9, max_delay_seconds=1.0, clock=clock
        )
        enqueued_ciphertexts = 0
        released_ciphertexts = 0
        detached_ciphertexts = 0
        enqueued_entries = 0
        detached_entries = 0
        jobs: list[object] = []
        for op in ops:
            if op[0] == "enqueue":
                job = object()
                jobs.append(job)
                scheduler.enqueue(_FakeEntry(keypair=op[1], count=op[2], job=job))
                enqueued_ciphertexts += op[2]
                enqueued_entries += 1
            elif op[0] == "end_burst":
                scheduler.end_burst()
            elif op[0] == "advance":
                clock.now += op[1]
            elif op[0] == "detach" and jobs:
                for entry in scheduler.detach_job(jobs.pop()):
                    detached_ciphertexts += len(entry.request.ciphertexts)
                    detached_entries += 1
            elif op[0] == "poll":
                for entries in scheduler.take_due():
                    released_ciphertexts += sum(
                        len(entry.request.ciphertexts) for entry in entries
                    )
                # The starvation guarantee: no window older than
                # max_delay_seconds survives a poll.
                deadline = scheduler.next_deadline()
                assert deadline is None or deadline > clock.now
            # Conservation: every ciphertext is parked, released, or detached.
            assert (
                scheduler.pending_ciphertexts()
                == enqueued_ciphertexts - released_ciphertexts - detached_ciphertexts
            )
            assert scheduler.pending_ciphertexts() >= 0
        clock.now += 2.0  # one final poll past every possible deadline
        for entries in scheduler.take_due():
            released_ciphertexts += sum(len(entry.request.ciphertexts) for entry in entries)
        assert scheduler.pending_ciphertexts() == 0
        assert released_ciphertexts + detached_ciphertexts == enqueued_ciphertexts
        assert len(scheduler.decrypt_ages) == enqueued_entries - detached_entries


class TestWindowedServing:
    def _serve_in_bursts(self, protocol, setup, scheduler, burst_size=2):
        """Feed SPAM_EMAILS in bursts; return verdicts by label plus the runtime."""
        runtime = ProviderRuntime(scheduler=scheduler)
        pool = protocol.make_ot_pool(setup)
        finished = []
        for start in range(0, len(SPAM_EMAILS), burst_size):
            jobs = [
                spam_job(protocol, setup, features, label=start + offset, ot_pool=pool)
                for offset, features in enumerate(SPAM_EMAILS[start : start + burst_size])
            ]
            finished += runtime.serve_burst(jobs)
        finished += runtime.drain()
        verdicts = {job.label: job.client.is_spam for job in finished}
        return [verdicts[index] for index in range(len(SPAM_EMAILS))], runtime

    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda: DecryptScheduler(window_bursts=1),
            lambda: DecryptScheduler(window_bursts=2),
            lambda: DecryptScheduler(window_bursts=100),  # only drain() closes it
            lambda: DecryptScheduler(window_bursts=100, max_pending_ciphertexts=3),
            lambda: DecryptScheduler(window_bursts=100, max_delay_seconds=0.0),
        ],
        ids=["bursts1", "bursts2", "drain-only", "size3", "delay0"],
    )
    def test_every_window_setting_matches_sequential(
        self, spam_setup, spam_truth, make_scheduler
    ):
        protocol, setup = spam_setup
        verdicts, _ = self._serve_in_bursts(protocol, setup, make_scheduler())
        assert verdicts == spam_truth

    def test_window_one_degenerates_to_per_burst_batching(self, spam_setup, spam_truth):
        # window_bursts=1 is PR 2 behaviour: every burst completes before
        # serve_burst returns, with one batched decrypt per burst.
        protocol, setup = spam_setup
        runtime = ProviderRuntime()  # default scheduler: window_bursts=1
        pool = protocol.make_ot_pool(setup)
        per_email = setup.encrypted_model.result_ciphertext_count()
        for start in range(0, len(SPAM_EMAILS), 3):
            burst = SPAM_EMAILS[start : start + 3]
            jobs = [
                spam_job(protocol, setup, features, label=index, ot_pool=pool)
                for index, features in enumerate(burst)
            ]
            finished = runtime.serve_burst(jobs)
            assert len(finished) == len(burst)
            assert runtime.outstanding_jobs() == 0
        assert runtime.decrypt_batch_sizes == [3 * per_email, 3 * per_email]
        assert runtime.drain() == []

    def test_wide_window_holds_work_across_bursts(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        scheduler = DecryptScheduler(window_bursts=3)
        verdicts, runtime = self._serve_in_bursts(protocol, setup, scheduler)
        assert verdicts == spam_truth
        per_email = setup.encrypted_model.result_ciphertext_count()
        # 3 bursts of 2 emails folded into one decrypt; no per-burst calls.
        assert runtime.decrypt_batch_sizes == [len(SPAM_EMAILS) * per_email]

    def test_drain_on_idle_runtime_is_empty(self):
        runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=4))
        assert runtime.drain() == []
        assert runtime.outstanding_jobs() == 0

    def test_time_window_through_serving_loop_pinned_to_fake_clock(
        self, spam_setup, spam_truth
    ):
        # The wall-clock trigger end-to-end, with zero real time involved: the
        # window must hold while the injected clock is short of the deadline
        # and close (finishing the parked jobs) the poll after it passes.
        protocol, setup = spam_setup
        clock = _FakeClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=100, max_delay_seconds=5.0, clock=clock
            )
        )
        pool = protocol.make_ot_pool(setup)
        jobs = [
            spam_job(protocol, setup, features, label=index, ot_pool=pool)
            for index, features in enumerate(SPAM_EMAILS[:2])
        ]
        assert runtime.serve_burst(jobs) == []  # parked; clock at 0.0
        clock.now = 4.999
        assert runtime.serve_burst([]) == []  # still inside the window
        clock.now = 5.0
        finished = runtime.serve_burst([])
        assert sorted(job.label for job in finished) == [0, 1]
        verdicts = {job.label: job.client.is_spam for job in finished}
        assert [verdicts[0], verdicts[1]] == spam_truth[:2]
        assert runtime.outstanding_jobs() == 0


class TestIdleWindowStarvation:
    """The PR 8 bugfix: age triggers must fire with *no* further traffic.

    Before ``ProviderRuntime.poll``, ``max_delay_seconds`` was only evaluated
    inside ``serve_burst``/``drain`` — an idle provider held parked decrypts
    (and the clients' emails) unboundedly.  These tests park work, advance a
    fake clock past the deadline, send **no** further bursts, and assert the
    decrypt fires from a bare poll.
    """

    def test_poll_fires_aged_window_without_traffic(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        clock = _FakeClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=100, max_delay_seconds=5.0, clock=clock
            )
        )
        job = spam_job(protocol, setup, SPAM_EMAILS[0], label=0)
        assert runtime.serve_burst([job]) == []  # parked inside the window
        assert runtime.poll() == []  # deadline not reached: still parked
        clock.now = 5.0
        finished = runtime.poll()  # no burst, no drain — just the tick
        assert [job.label for job in finished] == [0]
        assert finished[0].client.is_spam == spam_truth[0]
        assert runtime.outstanding_jobs() == 0

    def test_poll_respects_the_deadline(self, spam_setup):
        protocol, setup = spam_setup
        clock = _FakeClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=100, max_delay_seconds=5.0, clock=clock
            )
        )
        runtime.serve_burst([spam_job(protocol, setup, SPAM_EMAILS[0], label=0)])
        assert runtime.scheduler.next_deadline() == 5.0
        clock.now = 4.999
        assert runtime.poll() == []
        assert runtime.outstanding_jobs() == 1  # still parked: not yet due

    def test_poll_accepts_explicit_now(self, spam_setup):
        protocol, setup = spam_setup
        clock = _FakeClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=100, max_delay_seconds=2.0, clock=clock
            )
        )
        runtime.serve_burst([spam_job(protocol, setup, SPAM_EMAILS[0], label=0)])
        finished = runtime.poll(now=2.0)  # the clock itself never moved
        assert len(finished) == 1

    def test_poll_on_idle_runtime_is_empty(self):
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(window_bursts=100, max_delay_seconds=0.01)
        )
        assert runtime.poll() == []

    def test_adaptive_runtime_poll_releases_idle_tail(self, spam_setup, spam_truth):
        # End-to-end with the adaptive scheduler: one email on a quiet
        # stream parks, and the poll tick releases it near min_delay.
        protocol, setup = spam_setup
        clock = _FakeClock()
        runtime = ProviderRuntime(
            scheduler=AdaptiveDecryptScheduler(
                min_delay_seconds=0.002, max_delay_seconds=0.25, clock=clock
            )
        )
        assert runtime.serve_burst([spam_job(protocol, setup, SPAM_EMAILS[0], label=0)]) == []
        deadline = runtime.scheduler.next_deadline()
        assert deadline is not None and deadline <= 0.01  # quiet stream: ~min_delay
        clock.now = deadline
        finished = runtime.poll()
        assert [job.client.is_spam for job in finished] == spam_truth[:1]
        assert runtime.scheduler.decrypt_ages == [pytest.approx(deadline)]


class TestShardedRuntime:
    def test_partition_is_stable_and_total(self):
        addresses = [f"user{i}@example.com" for i in range(64)]
        shards = [shard_of_address(address, 4) for address in addresses]
        assert shards == [shard_of_address(address, 4) for address in addresses]
        assert set(shards) == {0, 1, 2, 3}  # 64 addresses cover 4 shards w.h.p.
        assert all(0 <= shard < 4 for shard in shards)

    def test_sharded_spam_matches_sequential(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        addresses = ["alice@example.com", "bob@example.com", "carol@example.com"]
        with ShardedRuntime(num_shards=2, window_bursts=2) as runtime:
            for address in addresses:
                runtime.register_spam(address, protocol, setup)
            bursts = [
                [(addresses[index % 3], features) for index, features in burst]
                for burst in (
                    list(enumerate(SPAM_EMAILS[:3])),
                    list(enumerate(SPAM_EMAILS[3:], start=3)),
                )
            ]
            results = runtime.run_spam_stream(bursts)
            assert [result.is_spam for result in results] == spam_truth
            stats = runtime.shard_stats()
        assert sum(stat["mailboxes"] for stat in stats) == len(addresses)
        assert all(stat["outstanding_jobs"] == 0 for stat in stats)

    def test_sharded_topics_match_sequential(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        truths = [small_topic_model.predict(features) for features in TOPIC_EMAILS]
        candidates = [sorted({truth, 0, 1, 2}) for truth in truths]
        with ShardedRuntime(num_shards=2) as runtime:
            runtime.register_topics("dave@example.com", protocol, setup)
            job_ids = runtime.submit_topics(
                [
                    ("dave@example.com", features, candidate_list)
                    for features, candidate_list in zip(TOPIC_EMAILS, candidates)
                ]
            )
            runtime.drain()
            extracted = [runtime.take_result(job_id).extracted_topic for job_id in job_ids]
        assert extracted == truths

    def test_forced_mid_window_restart_recomputes_open_window(
        self, spam_setup, spam_truth
    ):
        # Kill a worker while its decrypt window is open: the parent must
        # replay registrations, resubmit the in-flight emails, and the final
        # outputs must match the sequential truth exactly.
        protocol, setup = spam_setup
        address = "restartable@example.com"
        with ShardedRuntime(num_shards=2, window_bursts=100) as runtime:
            runtime.register_spam(address, protocol, setup)
            first_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS[:3]])
            assert runtime.outstanding_count() == 3  # parked inside the window
            resubmitted = runtime.restart_shard(runtime.shard_of(address))
            assert resubmitted == 3
            second_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS[3:]])
            runtime.drain()
            verdicts = [
                runtime.take_result(job_id).is_spam for job_id in first_ids + second_ids
            ]
        assert verdicts == spam_truth

    def test_restart_of_idle_shard_is_harmless(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        address = "idle-restart@example.com"
        with ShardedRuntime(num_shards=2) as runtime:
            runtime.register_spam(address, protocol, setup)
            assert runtime.restart_shard(runtime.shard_of(address)) == 0
            results = runtime.run_spam_stream([[(address, SPAM_EMAILS[0])]])
            assert results[0].is_spam == spam_truth[0]

    def test_unregistered_mailbox_error_surfaces_in_parent(self, spam_setup):
        with ShardedRuntime(num_shards=1) as runtime:
            with pytest.raises(ProtocolError, match="rejected|no spam mailbox"):
                runtime.submit_spam([("ghost@example.com", SPAM_EMAILS[0])])

    def test_take_result_before_drain_raises(self, spam_setup):
        protocol, setup = spam_setup
        address = "early@example.com"
        with ShardedRuntime(num_shards=1, window_bursts=100) as runtime:
            runtime.register_spam(address, protocol, setup)
            (job_id,) = runtime.submit_spam([(address, SPAM_EMAILS[0])])
            with pytest.raises(ProtocolError, match="no result"):
                runtime.take_result(job_id)
            runtime.drain()
            assert runtime.take_result(job_id) is not None

    def test_closed_runtime_rejects_work(self, spam_setup):
        runtime = ShardedRuntime(num_shards=1)
        runtime.close()
        with pytest.raises(ProtocolError):
            runtime.submit_spam([("late@example.com", SPAM_EMAILS[0])])
        runtime.close()  # idempotent

    def test_parent_poll_releases_aged_window_without_drain(
        self, spam_setup, spam_truth
    ):
        # The sharded face of the starvation fix: one email parks inside a
        # 100-burst window, no drain is ever called, and the result still
        # arrives once the age deadline passes — via poll() alone.
        protocol, setup = spam_setup
        address = "poller@example.com"
        with ShardedRuntime(
            num_shards=2, window_bursts=100, max_delay_seconds=0.05
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            (job_id,) = runtime.submit_spam([(address, SPAM_EMAILS[0])])
            released = 0
            deadline = time.monotonic() + 10.0
            while not released and time.monotonic() < deadline:
                time.sleep(0.02)
                released = runtime.poll()
            assert released == 1
            assert runtime.take_result(job_id).is_spam == spam_truth[0]
            assert runtime.outstanding_count() == 0

    def test_adaptive_sharded_runtime_matches_sequential(
        self, spam_setup, spam_truth
    ):
        protocol, setup = spam_setup
        addresses = ["ada@example.com", "bert@example.com"]
        with ShardedRuntime(
            num_shards=2,
            adaptive=True,
            adaptive_options={"min_delay_seconds": 0.001, "max_delay_seconds": 0.05},
        ) as runtime:
            for address in addresses:
                runtime.register_spam(address, protocol, setup)
            bursts = [
                [(addresses[index % 2], features) for index, features in burst]
                for burst in (
                    list(enumerate(SPAM_EMAILS[:3])),
                    list(enumerate(SPAM_EMAILS[3:], start=3)),
                )
            ]
            results = runtime.run_spam_stream(bursts)
            assert [result.is_spam for result in results] == spam_truth
            stats = runtime.shard_stats()
        # The workers report their latency ledgers up through shard_stats.
        assert all("decrypt_ages" in stat for stat in stats)
        assert sum(len(stat["decrypt_ages"]) for stat in stats) > 0


def _counter_value(snapshot, name):
    for entry in snapshot["counters"]:
        if entry["name"] == name:
            return entry["value"]
    return 0.0


def _histogram_entry(snapshot, name):
    for entry in snapshot["histograms"]:
        if entry["name"] == name:
            return entry
    raise AssertionError(f"no histogram {name!r} in snapshot")


class TestShardedTelemetry:
    """Worker registries merged in the parent equal a single-process run."""

    def _single_process_snapshot(self, protocol, setup, waves):
        """Serve the same stream in one process under an isolated registry."""
        with scoped_telemetry() as (registry, _):
            runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=1))
            pool = protocol.make_ot_pool(setup)
            label = 0
            for wave in waves:
                jobs = []
                for _, features in wave:
                    jobs.append(
                        spam_job(protocol, setup, features, label=label, ot_pool=pool)
                    )
                    label += 1
                runtime.serve_burst(jobs)
            runtime.drain()
            return registry.snapshot()

    def test_aggregated_metrics_equal_single_process_run(self, spam_setup):
        # One shard, window_bursts=1: the worker sees the identical burst
        # structure as a single-process runtime, so the aggregated serving
        # metrics must match series for series — counters and the full
        # decrypt batch-size distribution (bucket counts, sum, extremes).
        protocol, setup = spam_setup
        address = "solo-metrics@example.com"
        waves = [
            [(address, features) for features in SPAM_EMAILS[:3]],
            [(address, features) for features in SPAM_EMAILS[3:]],
        ]
        with ShardedRuntime(num_shards=1, window_bursts=1) as runtime:
            runtime.register_spam(address, protocol, setup)
            runtime.run_spam_stream(waves)
            aggregated = runtime.aggregated_metrics()
        single = self._single_process_snapshot(protocol, setup, waves)
        for name in ("emails_served_total", "decrypt_batches_total"):
            assert _counter_value(aggregated, name) == _counter_value(single, name)
        sharded_hist = _histogram_entry(aggregated, "decrypt_batch_ciphertexts")
        single_hist = _histogram_entry(single, "decrypt_batch_ciphertexts")
        for field in ("counts", "count", "sum", "min", "max", "recent"):
            assert sharded_hist[field] == single_hist[field]

    def test_multi_shard_aggregation_preserves_stream_totals(self, spam_setup):
        # Across two shards the batching *shape* legitimately differs (each
        # worker flushes its own windows), but the stream-level totals —
        # emails served and ciphertexts decrypted — must equal the
        # single-process run exactly.
        protocol, setup = spam_setup
        addresses = ["aggie@example.com", "boris@example.com", "cleo@example.com"]
        waves = [
            [
                (addresses[index % 3], features)
                for index, features in enumerate(SPAM_EMAILS[:3])
            ],
            [
                (addresses[index % 3], features)
                for index, features in enumerate(SPAM_EMAILS[3:], start=3)
            ],
        ]
        with ShardedRuntime(num_shards=2, window_bursts=1) as runtime:
            for address in addresses:
                runtime.register_spam(address, protocol, setup)
            runtime.run_spam_stream(waves)
            aggregated = runtime.aggregated_metrics()
        single = self._single_process_snapshot(protocol, setup, waves)
        assert _counter_value(aggregated, "emails_served_total") == _counter_value(
            single, "emails_served_total"
        ) == len(SPAM_EMAILS)
        sharded_hist = _histogram_entry(aggregated, "decrypt_batch_ciphertexts")
        single_hist = _histogram_entry(single, "decrypt_batch_ciphertexts")
        assert sharded_hist["sum"] == single_hist["sum"]

    def test_restart_folds_dead_incarnation_exactly_once(self, spam_setup, spam_truth):
        # Work served before a restart must survive in the aggregate (the
        # dead incarnation's final snapshot folds into the per-shard base)
        # and must never be folded twice by later stats refreshes.
        protocol, setup = spam_setup
        address = "fold-once@example.com"
        with ShardedRuntime(num_shards=1, window_bursts=1) as runtime:
            runtime.register_spam(address, protocol, setup)
            runtime.run_spam_stream([[(address, f) for f in SPAM_EMAILS[:3]]])
            assert _counter_value(
                runtime.aggregated_metrics(), "emails_served_total"
            ) == 3
            runtime.restart_shard(0)
            runtime.run_spam_stream([[(address, f) for f in SPAM_EMAILS[3:]]])
            runtime.shard_stats()  # a stats refresh must not re-fold the base
            aggregated = runtime.aggregated_metrics()
        assert _counter_value(aggregated, "emails_served_total") == len(SPAM_EMAILS)


class TestAsyncSessionPump:
    def _run_tcp_sessions(
        self, protocol, setup, feature_sets, window_seconds=0.02, controller=None
    ):
        """Run N spam sessions over real TCP through one provider pump."""

        async def scenario():
            provider_pump = AsyncSessionPump(
                window_seconds=window_seconds, controller=controller
            )
            client_pump = AsyncSessionPump()
            pool = protocol.make_ot_pool(setup)

            def codec():
                return WireCodec(scheme=protocol.scheme, public_key=setup.keypair.public)

            async def handle_connection(transport):
                channel = AsyncFramedChannel(transport, codec())
                session = protocol.provider_session(setup, ot_pool=pool)
                await provider_pump.run_session(channel, "provider", session)

            server = await AsyncTcpTransport.start_server(handle_connection, port=0)
            port = server.sockets[0].getsockname()[1]

            async def run_client(features):
                transport = await AsyncTcpTransport.connect("127.0.0.1", port)
                channel = AsyncFramedChannel(transport, codec())
                session = protocol.client_session(setup, features, ot_pool=pool)
                await client_pump.run_session(channel, "client", session)
                verdict = session.is_spam
                await channel.aclose()
                return verdict, channel.total_bytes()

            try:
                outcomes = await asyncio.gather(
                    *(run_client(features) for features in feature_sets)
                )
            finally:
                server.close()
                await server.wait_closed()
            return outcomes, provider_pump.decrypt_batch_sizes

        return asyncio.run(scenario())

    def test_single_session_over_tcp_matches_plain(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        outcomes, batches = self._run_tcp_sessions(protocol, setup, SPAM_EMAILS[:1])
        assert [verdict for verdict, _ in outcomes] == spam_truth[:1]
        assert all(total_bytes > 0 for _, total_bytes in outcomes)
        assert batches == [setup.encrypted_model.result_ciphertext_count()]

    def test_concurrent_tcp_sessions_batch_decrypts(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        outcomes, batches = self._run_tcp_sessions(protocol, setup, SPAM_EMAILS[:3])
        assert [verdict for verdict, _ in outcomes] == spam_truth[:3]
        # All three connections' decrypts folded into one windowed batch.
        per_email = setup.encrypted_model.result_ciphertext_count()
        assert sum(batches) == 3 * per_email
        assert max(batches) >= 2 * per_email

    def test_invalid_pump_settings_rejected(self):
        with pytest.raises(ProtocolError):
            AsyncSessionPump(window_seconds=-0.1)
        with pytest.raises(ProtocolError):
            AsyncSessionPump(max_pending_ciphertexts=0)

    def test_controller_driven_pump_matches_plain(self, spam_setup, spam_truth):
        # An adaptive pump (window retuned per arrival by the controller)
        # must still serve every session correctly over real TCP.
        controller = AdaptiveWindowController(
            min_delay_seconds=0.001, max_delay_seconds=0.05, target_batch_items=64
        )
        protocol, setup = spam_setup
        outcomes, batches = self._run_tcp_sessions(
            protocol, setup, SPAM_EMAILS[:3], controller=controller
        )
        assert [verdict for verdict, _ in outcomes] == spam_truth[:3]
        per_email = setup.encrypted_model.result_ciphertext_count()
        assert sum(batches) == 3 * per_email
        assert controller.estimator._last_update is not None  # arrivals observed
