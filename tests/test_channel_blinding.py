"""Tests for the two-party channel and the blinding step."""

import numpy as np
import pytest

from repro.crypto.packing import PackedLinearModel
from repro.exceptions import ProtocolError
from repro.twopc.blinding import blind_dot_products, blind_extracted_candidates, unblind_reference
from repro.twopc.channel import TwoPartyChannel, estimate_message_bytes


class TestChannel:
    def test_fifo_delivery_between_parties(self):
        channel = TwoPartyChannel()
        channel.send("client", "first")
        channel.send("client", "second")
        assert channel.receive("provider") == "first"
        assert channel.receive("provider") == "second"

    def test_receive_skips_own_messages(self):
        channel = TwoPartyChannel()
        channel.send("provider", "from-provider")
        channel.send("client", "from-client")
        assert channel.receive("provider") == "from-client"
        assert channel.receive("client") == "from-provider"

    def test_empty_receive_raises(self):
        channel = TwoPartyChannel()
        with pytest.raises(ProtocolError):
            channel.receive("client")

    def test_byte_accounting_accumulates(self):
        channel = TwoPartyChannel()
        size = channel.send("client", b"x" * 100)
        assert size == 100
        channel.send("provider", b"y" * 50)
        assert channel.total_bytes() == 150
        assert channel.bytes_by_sender["client"] == 100
        assert channel.total_messages() == 2

    def test_reset_accounting(self):
        channel = TwoPartyChannel()
        channel.send("client", b"x" * 10)
        channel.reset_accounting()
        assert channel.total_bytes() == 0

    def test_ciphertext_sizes_use_wire_size(self, bv_scheme, bv_keys):
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [1])
        assert estimate_message_bytes(ciphertext) == bv_scheme.ciphertext_size_bytes()
        assert estimate_message_bytes([ciphertext, ciphertext]) == 2 * bv_scheme.ciphertext_size_bytes()

    def test_structured_message_size_positive(self):
        assert estimate_message_bytes({"key": [1, 2, 3], "blob": b"abc"}) > 0

    def test_unsized_object_raises_instead_of_guessing(self):
        # The flat 64-byte fallback is gone: protocol objects belong in a
        # typed wire frame with a real codec, not in a guess.
        class Opaque:
            pass

        with pytest.raises(ProtocolError):
            estimate_message_bytes(Opaque())
        with pytest.raises(ProtocolError):
            TwoPartyChannel().send("client", Opaque())


@pytest.fixture(scope="module")
def packed_model(bv_scheme, bv_keys):
    rng = np.random.default_rng(3)
    matrix = rng.integers(0, 100, size=(30, 2)).tolist()
    model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, matrix, across_rows=True)
    return matrix, model


class TestBlinding:
    def test_blinded_outputs_unblind_to_true_dot_products(self, bv_scheme, bv_keys, packed_model):
        matrix, model = packed_model
        features = [(0, 1), (7, 2)]
        result = model.dot_products(features)
        blinded = blind_dot_products(bv_scheme, bv_keys.public, model, result, [0, 1], dot_bits=20)
        reference = np.array(matrix[-1], dtype=np.int64)
        for index, frequency in features:
            reference += frequency * np.array(matrix[index])
        decrypted = [bv_scheme.decrypt_slots(bv_keys, ct) for ct in blinded.ciphertexts]
        for column in (0, 1):
            ct_index, slot, noise = blinded.output_noise[column]
            recovered = unblind_reference(decrypted[ct_index][slot], noise, bv_scheme)
            assert recovered == reference[column]

    def test_non_output_slots_are_blinded(self, bv_scheme, bv_keys, packed_model):
        _, model = packed_model
        result = model.dot_products([(1, 1)])
        blinded_a = blind_dot_products(bv_scheme, bv_keys.public, model, result, [0, 1], dot_bits=20)
        blinded_b = blind_dot_products(bv_scheme, bv_keys.public, model, result, [0, 1], dot_bits=20)
        slots_a = bv_scheme.decrypt_slots(bv_keys, blinded_a.ciphertexts[0])
        slots_b = bv_scheme.decrypt_slots(bv_keys, blinded_b.ciphertexts[0])
        # The garbage/unused slots get fresh full-range noise each time.
        output_slots = {blinded_a.output_noise[0][1], blinded_a.output_noise[1][1]}
        differing = [
            slot for slot in range(bv_scheme.num_slots)
            if slot not in output_slots and slots_a[slot] != slots_b[slot]
        ]
        assert len(differing) > bv_scheme.num_slots // 2

    def test_candidate_extraction_unblinds_correctly(self, bv_scheme, bv_keys, packed_model):
        matrix, model = packed_model
        features = [(2, 1), (9, 3)]
        result = model.dot_products(features)
        blinded = blind_extracted_candidates(
            bv_scheme, bv_keys.public, model, result, candidate_columns=[1], dot_bits=20
        )
        reference = matrix[-1][1] + matrix[2][1] + 3 * matrix[9][1]
        ct_index, slot, noise = blinded.output_noise[1]
        assert slot == bv_scheme.num_slots - 1
        decrypted = bv_scheme.decrypt_slots(bv_keys, blinded.ciphertexts[ct_index])
        assert unblind_reference(decrypted[slot], noise, bv_scheme) == reference

    def test_candidate_extraction_one_ciphertext_per_candidate(self, bv_scheme, bv_keys, packed_model):
        _, model = packed_model
        result = model.dot_products([(0, 1)])
        blinded = blind_extracted_candidates(
            bv_scheme, bv_keys.public, model, result, candidate_columns=[0, 1], dot_bits=20
        )
        assert len(blinded.ciphertexts) == 2
        assert blinded.network_bytes() == 2 * bv_scheme.ciphertext_size_bytes()

    def test_unknown_column_rejected(self, bv_scheme, bv_keys, packed_model):
        _, model = packed_model
        result = model.dot_products([(0, 1)])
        with pytest.raises(ProtocolError):
            blind_dot_products(bv_scheme, bv_keys.public, model, result, [5], dot_bits=20)
        with pytest.raises(ProtocolError):
            blind_extracted_candidates(
                bv_scheme, bv_keys.public, model, result, candidate_columns=[7], dot_bits=20
            )

    def test_paillier_requires_guard_bits(self, paillier_scheme, paillier_keys):
        matrix = [[1, 2], [3, 4]]
        model = PackedLinearModel.encrypt(paillier_scheme, paillier_keys.public, matrix, across_rows=False)
        result = model.dot_products([(0, 1)])
        with pytest.raises(ProtocolError):
            blind_dot_products(
                paillier_scheme, paillier_keys.public, model, result, [0, 1],
                dot_bits=paillier_scheme.slot_bits,
            )

    def test_paillier_guard_blinding_roundtrip(self, paillier_scheme, paillier_keys):
        matrix = [[5, 8], [2, 1], [7, 7]]
        model = PackedLinearModel.encrypt(paillier_scheme, paillier_keys.public, matrix, across_rows=False)
        features = [(0, 2), (1, 1)]
        result = model.dot_products(features)
        blinded = blind_dot_products(
            paillier_scheme, paillier_keys.public, model, result, [0, 1], dot_bits=8
        )
        decrypted = [paillier_scheme.decrypt_slots(paillier_keys, ct) for ct in blinded.ciphertexts]
        expected = [7 + 2 * 5 + 2, 7 + 2 * 8 + 1]
        for column in (0, 1):
            ct_index, slot, noise = blinded.output_noise[column]
            assert decrypted[ct_index][slot] - noise == expected[column]
