"""Tests for hashing/HKDF helpers and the HMAC-DRBG style PRG."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import hashes
from repro.crypto.prg import Prg, prf
from repro.exceptions import ParameterError


class TestSha256Helpers:
    def test_sha256_concatenation_equivalence(self):
        assert hashes.sha256(b"ab", b"cd") == hashes.sha256(b"abcd")

    def test_sha256_int_deterministic(self):
        assert hashes.sha256_int(b"x") == hashes.sha256_int(b"x")

    def test_hmac_key_sensitivity(self):
        assert hashes.hmac_sha256(b"k1", b"m") != hashes.hmac_sha256(b"k2", b"m")

    def test_constant_time_equal(self):
        assert hashes.constant_time_equal(b"same", b"same")
        assert not hashes.constant_time_equal(b"same", b"diff")


class TestHkdf:
    def test_output_length(self):
        assert len(hashes.hkdf(b"ikm", b"info", 100)) == 100

    def test_info_separation(self):
        assert hashes.hkdf(b"ikm", b"a", 32) != hashes.hkdf(b"ikm", b"b", 32)

    def test_salt_changes_output(self):
        assert hashes.hkdf(b"ikm", b"i", 32, salt=b"s1") != hashes.hkdf(b"ikm", b"i", 32, salt=b"s2")

    def test_rejects_zero_length(self):
        with pytest.raises(ParameterError):
            hashes.hkdf(b"ikm", b"info", 0)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=255))
    def test_prefix_property(self, ikm, length):
        long = hashes.hkdf(ikm, b"info", 255)
        assert hashes.hkdf(ikm, b"info", length) == long[:length]


class TestHashToGroupElement:
    def test_in_range(self):
        modulus = 10007
        for i in range(20):
            element = hashes.hash_to_group_element(bytes([i]), modulus)
            assert 1 <= element < modulus

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ParameterError):
            hashes.hash_to_group_element(b"x", 2)


class TestPrg:
    def test_deterministic(self):
        assert Prg(b"seed").read(64) == Prg(b"seed").read(64)

    def test_seed_separation(self):
        assert Prg(b"seed-a").read(32) != Prg(b"seed-b").read(32)

    def test_domain_separation(self):
        assert Prg(b"s", domain=b"d1").read(32) != Prg(b"s", domain=b"d2").read(32)

    def test_stream_continuity(self):
        prg = Prg(b"seed")
        combined = prg.read(10) + prg.read(22)
        assert combined == Prg(b"seed").read(32)

    def test_read_bits_count(self):
        assert len(Prg(b"seed").read_bits(13)) == 13
        assert set(Prg(b"seed").read_bits(100)) <= {0, 1}

    def test_read_int_range(self):
        prg = Prg(b"seed")
        values = [prg.read_int(37) for _ in range(200)]
        assert all(0 <= value < 37 for value in values)
        assert len(set(values)) > 10

    def test_read_signed_int_range(self):
        prg = Prg(b"seed")
        values = [prg.read_signed_int(4) for _ in range(200)]
        assert all(-4 <= value <= 4 for value in values)

    def test_empty_seed_rejected(self):
        with pytest.raises(ParameterError):
            Prg(b"")


class TestPrf:
    def test_deterministic_and_length(self):
        assert prf(b"key", b"msg", 48) == prf(b"key", b"msg", 48)
        assert len(prf(b"key", b"msg", 48)) == 48

    def test_message_separation(self):
        assert prf(b"key", b"m1") != prf(b"key", b"m2")

    def test_rejects_zero_length(self):
        with pytest.raises(ParameterError):
            prf(b"key", b"msg", 0)
