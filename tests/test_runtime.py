"""Serving-loop tests: interleaved sessions, batched decrypts, OT pooling.

The concurrency satellite of the runtime refactor: N sessions interleaved
over loopback transports must produce exactly the outputs of N sequential
runs, while the provider's decrypts collapse into one batched
``decrypt_slots_many`` call per key pair and the Yao OTs of pooled sessions
extend a single per-pair base-OT handshake.
"""

import pytest

from repro.core.runtime import (
    MailboxDirectory,
    ProviderRuntime,
    run_spam_batch,
    run_topic_batch,
    spam_job,
    topic_job,
)
from repro.crypto.ot import ObliviousTransfer, initialize_ot_pool, make_ot_receiver, make_ot_sender
from repro.twopc.noprv import NoPrivClassifier, run_noprv_session
from repro.twopc.session import run_session_pair
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.topics import TopicExtractionProtocol
from repro.twopc.transport import FramedChannel

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
    {i: 1 for i in range(0, 200, 7)},
    {3: 1, 77: 1},
    {i: 1 for i in range(1, 200, 23)},
]

TOPIC_EMAILS = [
    {2: 1, 3: 2, 77: 1},
    {150: 4, 151: 1, 10: 2},
    {i: 1 for i in range(0, 200, 11)},
    {40: 2, 41: 1},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


class TestConcurrentEqualsSequential:
    def test_spam_interleaved_matches_sequential(self, spam_setup, small_spam_model):
        protocol, setup = spam_setup
        sequential = [
            protocol.classify_email(setup, features).is_spam for features in SPAM_EMAILS
        ]
        runtime = ProviderRuntime()
        concurrent = run_spam_batch(protocol, setup, SPAM_EMAILS, runtime=runtime)
        assert [result.is_spam for result in concurrent] == sequential
        assert sequential == [
            small_spam_model.predict_is_spam(features) for features in SPAM_EMAILS
        ]
        # All six provider decrypts ran as one cross-session batch.
        assert runtime.decrypt_batch_sizes == [
            len(SPAM_EMAILS) * setup.encrypted_model.result_ciphertext_count()
        ]

    def test_topic_interleaved_matches_sequential(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        truths = [small_topic_model.predict(features) for features in TOPIC_EMAILS]
        candidate_lists = [sorted({truth, 0, 1, 2}) for truth in truths] + [None]
        emails = TOPIC_EMAILS + [TOPIC_EMAILS[0]]
        sequential = [
            protocol.extract_topic(setup, features, candidate_topics=candidates).extracted_topic
            for features, candidates in zip(emails, candidate_lists)
        ]
        runtime = ProviderRuntime()
        concurrent = run_topic_batch(
            protocol, setup, emails, candidate_lists=candidate_lists, runtime=runtime
        )
        assert [result.extracted_topic for result in concurrent] == sequential
        assert sequential[: len(truths)] == truths
        assert len(runtime.decrypt_batch_sizes) == 1

    def test_batch_results_account_exact_bytes(self, spam_setup, topic_setup):
        spam_protocol, s_setup = spam_setup
        topic_protocol, t_setup = topic_setup
        runtime = ProviderRuntime()
        jobs = [
            spam_job(spam_protocol, s_setup, features, label=index)
            for index, features in enumerate(SPAM_EMAILS[:3])
        ]
        jobs.append(topic_job(topic_protocol, t_setup, TOPIC_EMAILS[0], [0, 1, 2], label="t"))
        runtime.run(jobs)
        for job in jobs:
            frame_log = job.channel.transport.frame_log
            assert job.channel.total_bytes() == sum(size for _, size in frame_log)
            assert job.channel.total_messages() == len(frame_log)
            assert job.channel.pending() == 0


class TestMultiUserBatching:
    def test_decrypts_group_by_keypair(self, bv_scheme, dh_group, small_spam_model):
        protocol = SpamFilterProtocol(bv_scheme, dh_group)
        setup_a = protocol.setup(small_spam_model)
        setup_b = protocol.setup(small_spam_model)
        runtime = ProviderRuntime()
        jobs = [
            spam_job(protocol, setup_a, SPAM_EMAILS[0], label="a0"),
            spam_job(protocol, setup_b, SPAM_EMAILS[1], label="b0"),
            spam_job(protocol, setup_a, SPAM_EMAILS[2], label="a1"),
            spam_job(protocol, setup_b, SPAM_EMAILS[3], label="b1"),
        ]
        runtime.run(jobs)
        # Two mailboxes -> two batched decrypts (one per key pair), each
        # covering that mailbox's two concurrent sessions.
        per_email = setup_a.encrypted_model.result_ciphertext_count()
        assert sorted(runtime.decrypt_batch_sizes) == [2 * per_email, 2 * per_email]
        for job, features in zip(jobs, SPAM_EMAILS[:4]):
            assert job.client.is_spam == small_spam_model.predict_is_spam(features)

    def test_mailbox_directory_serves_spam_and_topics(
        self, bv_scheme, dh_group, small_spam_model, small_topic_model
    ):
        directory = MailboxDirectory()
        spam_protocol = SpamFilterProtocol(bv_scheme, dh_group)
        topic_protocol = TopicExtractionProtocol(bv_scheme, dh_group)
        directory.register_spam("bob@example.com", spam_protocol, spam_protocol.setup(small_spam_model))
        directory.register_topics("bob@example.com", topic_protocol, topic_protocol.setup(small_topic_model))
        assert directory.mailbox_count() == 1
        jobs = directory.spam_jobs("bob@example.com", SPAM_EMAILS[:2])
        jobs += directory.topic_jobs("bob@example.com", TOPIC_EMAILS[:1])
        runtime = ProviderRuntime()
        runtime.run(jobs)
        assert jobs[0].client.is_spam == small_spam_model.predict_is_spam(SPAM_EMAILS[0])
        assert jobs[1].client.is_spam == small_spam_model.predict_is_spam(SPAM_EMAILS[1])
        assert jobs[2].provider.extracted_topic == small_topic_model.predict(TOPIC_EMAILS[0])


class TestOtPooling:
    def test_pooled_extension_matches_choices(self, dh_group):
        pool = initialize_ot_pool(dh_group)
        pairs = [(bytes([i]) * 16, bytes([i + 100]) * 16) for i in range(12)]
        choices = [i % 2 for i in range(12)]
        for batch in range(3):  # repeated batches advance the global indices
            channel = FramedChannel.loopback("pooled-ot", parties=("sender", "receiver"))
            sender = make_ot_sender(dh_group, pairs, "iknp", pool=pool)
            receiver = make_ot_receiver(dh_group, choices, "iknp", pool=pool)
            run_session_pair(channel, {"sender": sender, "receiver": receiver})
            assert receiver.result == [pair[choice] for pair, choice in zip(pairs, choices)]
            # No base-OT frames on the wire: two frames, one round trip.
            assert channel.total_messages() == 2
        assert pool.receiver_state.next_index == 3 * len(pairs)
        assert pool.sender_state.next_index == 3 * len(pairs)

    def test_pooled_spam_sessions_agree_with_fresh(self, spam_setup, small_spam_model):
        protocol, setup = spam_setup
        pool = protocol.make_ot_pool(setup)
        for features in SPAM_EMAILS[:3]:
            result = protocol.classify_email(setup, features, ot_pool=pool)
            assert result.is_spam == small_spam_model.predict_is_spam(features)

    def test_pooled_topic_sessions_agree_with_fresh(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        pool = protocol.make_ot_pool(setup)
        truth = small_topic_model.predict(TOPIC_EMAILS[0])
        result = protocol.extract_topic(
            setup, TOPIC_EMAILS[0], candidate_topics=[truth, 0, 1], ot_pool=pool
        )
        assert result.extracted_topic == truth

    def test_one_shot_ot_still_works_alongside_pool(self, dh_group):
        # The stateless driver remains the baseline arrangement.
        pairs = [(b"A" * 16, b"B" * 16)] * 4
        received = ObliviousTransfer(dh_group, mode="iknp").run(None, pairs, [1, 0, 1, 0])
        assert received == [b"B" * 16, b"A" * 16, b"B" * 16, b"A" * 16]


class TestNoPrivSessions:
    def test_session_matches_direct_classification(self, small_topic_model):
        import numpy as np

        from repro.classify.model import LinearModel

        weights = small_topic_model.matrix[:-1].astype(float)
        biases = small_topic_model.matrix[-1].astype(float)
        model = LinearModel(
            weights=weights, biases=biases, category_names=small_topic_model.category_names
        )
        classifier = NoPrivClassifier(model)
        features = {3: 2, 10: 1}
        channel = FramedChannel.loopback("noprv")
        result, network_bytes = run_noprv_session(classifier, features, channel)
        assert result.predicted_category == classifier.classify(features).predicted_category
        assert network_bytes == channel.total_bytes()
        assert network_bytes > 0
        assert channel.pending() == 0
