"""Tests for DH groups, joint parameter agreement, Schnorr signatures, ElGamal KEM."""

import pytest

from repro.crypto.dh import DHGroup, DHKeyPair, joint_parameter_seed, validate_group
from repro.crypto.elgamal import ElGamalKeyPair, KemCiphertext, decapsulate, encapsulate
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, sign, verify, verify_or_raise
from repro.exceptions import ParameterError, ProtocolAbort, SignatureError


class TestDHGroup:
    def test_group_structure_validated(self, dh_group):
        assert dh_group.p == 2 * dh_group.q + 1
        assert pow(dh_group.g, dh_group.q, dh_group.p) == 1

    def test_invalid_generator_rejected(self, dh_group):
        with pytest.raises(ParameterError):
            DHGroup(p=dh_group.p, q=dh_group.q, g=dh_group.p - 1)

    def test_non_safe_prime_rejected(self):
        with pytest.raises(ParameterError):
            DHGroup(p=23, q=7, g=2)

    def test_element_validation(self, dh_group):
        keys = DHKeyPair.generate(dh_group)
        assert dh_group.is_valid_element(keys.public)
        assert not dh_group.is_valid_element(0)
        assert not dh_group.is_valid_element(dh_group.p)

    def test_shared_secret_agreement(self, dh_group):
        alice = DHKeyPair.generate(dh_group)
        bob = DHKeyPair.generate(dh_group)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_shared_secret_rejects_invalid_share(self, dh_group):
        alice = DHKeyPair.generate(dh_group)
        with pytest.raises(ProtocolAbort):
            alice.shared_secret(dh_group.p - 1)  # order-2 element

    def test_validate_group_accepts_good_group(self, dh_group):
        validate_group(dh_group)


class TestJointParameterSeed:
    def test_both_parties_derive_same_seed(self, dh_group):
        alice = DHKeyPair.generate(dh_group)
        bob = DHKeyPair.generate(dh_group)
        nonce_a, nonce_b = b"alice-nonce", b"bob-nonce"
        seed_a = joint_parameter_seed(dh_group, alice, bob.public, nonce_a, nonce_b)
        seed_b = joint_parameter_seed(dh_group, bob, alice.public, nonce_b, nonce_a)
        assert seed_a == seed_b
        assert len(seed_a) == 32

    def test_nonce_changes_seed(self, dh_group):
        alice = DHKeyPair.generate(dh_group)
        bob = DHKeyPair.generate(dh_group)
        seed_1 = joint_parameter_seed(dh_group, alice, bob.public, b"n1", b"peer")
        seed_2 = joint_parameter_seed(dh_group, alice, bob.public, b"n2", b"peer")
        assert seed_1 != seed_2


class TestSchnorr:
    def test_sign_verify_roundtrip(self, dh_group):
        keys = SchnorrKeyPair.generate(dh_group)
        signature = sign(keys.private, b"hello world")
        assert verify(keys.public, b"hello world", signature)

    def test_wrong_message_rejected(self, dh_group):
        keys = SchnorrKeyPair.generate(dh_group)
        signature = sign(keys.private, b"hello")
        assert not verify(keys.public, b"goodbye", signature)

    def test_wrong_key_rejected(self, dh_group):
        keys = SchnorrKeyPair.generate(dh_group)
        other = SchnorrKeyPair.generate(dh_group)
        signature = sign(keys.private, b"msg")
        assert not verify(other.public, b"msg", signature)

    def test_tampered_signature_rejected(self, dh_group):
        keys = SchnorrKeyPair.generate(dh_group)
        signature = sign(keys.private, b"msg")
        tampered = SchnorrSignature(signature.challenge, (signature.response + 1) % dh_group.q)
        assert not verify(keys.public, b"msg", tampered)

    def test_out_of_range_signature_rejected(self, dh_group):
        keys = SchnorrKeyPair.generate(dh_group)
        bad = SchnorrSignature(challenge=dh_group.q, response=0)
        assert not verify(keys.public, b"msg", bad)

    def test_verify_or_raise(self, dh_group):
        keys = SchnorrKeyPair.generate(dh_group)
        signature = sign(keys.private, b"msg")
        verify_or_raise(keys.public, b"msg", signature)
        with pytest.raises(SignatureError):
            verify_or_raise(keys.public, b"other", signature)


class TestElGamalKem:
    def test_encapsulate_decapsulate_agree(self, dh_group):
        keys = ElGamalKeyPair.generate(dh_group)
        ciphertext, key = encapsulate(keys.public)
        assert decapsulate(keys.private, ciphertext) == key
        assert len(key) == 32

    def test_different_encapsulations_differ(self, dh_group):
        keys = ElGamalKeyPair.generate(dh_group)
        _, key_1 = encapsulate(keys.public)
        _, key_2 = encapsulate(keys.public)
        assert key_1 != key_2

    def test_wrong_private_key_gives_wrong_key(self, dh_group):
        keys = ElGamalKeyPair.generate(dh_group)
        other = ElGamalKeyPair.generate(dh_group)
        ciphertext, key = encapsulate(keys.public)
        assert decapsulate(other.private, ciphertext) != key

    def test_invalid_ephemeral_rejected(self, dh_group):
        keys = ElGamalKeyPair.generate(dh_group)
        with pytest.raises(ParameterError):
            decapsulate(keys.private, KemCiphertext(ephemeral=dh_group.p - 1))

    def test_custom_key_length(self, dh_group):
        keys = ElGamalKeyPair.generate(dh_group)
        ciphertext, key = encapsulate(keys.public, key_length=48)
        assert len(key) == 48
        assert decapsulate(keys.private, ciphertext, key_length=48) == key
