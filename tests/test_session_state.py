"""Session persistence: golden bytes, restore roundtrips, stores, crash recovery.

The :class:`~repro.twopc.wire.SessionState` contract is what lets a killed
worker *resume* parked sessions instead of re-running them, so these tests pin
it from three directions:

* **golden bytes** — one pinned encoding per state kind (spam, topic, noprv,
  OT pool, pooled OT machines, Yao sessions — including mid-round), mirroring
  the wire-frame golden tests: any payload drift fails review-visibly and
  must ride a version bump;
* **restore roundtrips** — ``restore(state).snapshot() == state`` for every
  pinned variant, so the two directions of the contract cannot diverge;
* **recovery behaviour** — mid-window checkpoint/restore in-process for spam
  and topics, and a real ``SIGKILL`` of a shard worker whose replacement
  resumes from the :class:`~repro.core.runtime.FileSessionStore` checkpoint
  with zero resubmissions and bit-identical outputs.

Timing (``seconds``) is the one payload field wall clocks touch; the golden
builders zero it after driving a session mid-round.
"""

import os
import signal

import pytest

from repro.core.runtime import (
    DecryptScheduler,
    FileSessionStore,
    InMemorySessionStore,
    MailboxDirectory,
    ProviderRuntime,
    ShardCheckpointLog,
    ShardedRuntime,
    checkpoint_open_windows,
    restore_open_windows,
    spam_job,
    topic_job,
)
from repro.crypto.circuits import SpamCircuit
from repro.crypto.ot import (
    SECURITY_PARAMETER,
    OtExtensionPool,
    OtExtensionReceiverState,
    OtExtensionSenderState,
    PooledIknpReceiverMachine,
)
from repro.crypto.yao import YaoEvaluatorSession, YaoGarblerSession
from repro.exceptions import SnapshotError, WireFormatError
from repro.twopc.noprv import NoPrivClassifier, NoPrivClientSession, NoPrivProviderSession
from repro.twopc.spam import SpamClientSession, SpamFilterProtocol, SpamProviderSession
from repro.twopc.topics import (
    TopicClientSession,
    TopicExtractionProtocol,
    TopicProviderSession,
)
from repro.twopc.wire import (
    OtPublicsFrame,
    SessionState,
    SessionStateFrame,
    SessionStateKind,
    WireCodec,
)
from repro.utils.bitops import bytes_to_bits

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {i: 1 for i in range(0, 200, 7)},
]

TOPIC_EMAILS = [
    {2: 1, 3: 2, 77: 1},
    {150: 4, 151: 1, 10: 2},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


@pytest.fixture(scope="module")
def topic_setup(bv_scheme, dh_group, small_topic_model):
    protocol = TopicExtractionProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_topic_model)


@pytest.fixture(scope="module")
def spam_truth(small_spam_model):
    return [small_spam_model.predict_is_spam(features) for features in SPAM_EMAILS]


def _deterministic_pool() -> OtExtensionPool:
    """A full-size (kappa=128) pool built from fixed bytes, for golden states."""
    kappa = SECURITY_PARAMETER
    return OtExtensionPool(
        sender_state=OtExtensionSenderState(
            s_bits=bytes_to_bits(bytes(range(16)), kappa),
            seed_keys=[bytes([j % 256]) * 16 for j in range(kappa)],
        ),
        receiver_state=OtExtensionReceiverState(
            seed_pairs=[
                (bytes([j % 256]) * 16, bytes([(j + 1) % 256]) * 16) for j in range(kappa)
            ],
        ),
    )


def _small_pool() -> OtExtensionPool:
    """A tiny (4-transfer) pool whose golden encoding stays a short literal."""
    return OtExtensionPool(
        sender_state=OtExtensionSenderState(
            s_bits=[1, 0, 1, 1],
            seed_keys=[bytes([j]) * 4 for j in range(4)],
            next_index=8,
            claimed=[(0, 8)],
        ),
        receiver_state=OtExtensionReceiverState(
            seed_pairs=[(bytes([j]) * 4, bytes([j + 1]) * 4) for j in range(4)],
            next_index=8,
        ),
    )


def _zeroed(session):
    """Zero the wall-clock fields so mid-round snapshots are deterministic."""
    session.seconds = 0.0
    machine = getattr(session, "_ot", None)
    if machine is not None:
        machine.seconds = 0.0
    return session


# Pinned encodings: regenerate ONLY together with a state-version bump.
GOLDEN_STATES = {
    "ot_pool": "0101000001d34d000000000000000253000000000000000872656365697665724d000000000000000253000000000000000a6e6578745f696e6465784900000000000000010853000000000000000a736565645f70616972734c00000000000000044c000000000000000242000000000000000400000000420000000000000004010101014c000000000000000242000000000000000401010101420000000000000004020202024c000000000000000242000000000000000402020202420000000000000004030303034c0000000000000002420000000000000004030303034200000000000000040404040453000000000000000673656e6465724d0000000000000005530000000000000007636c61696d65644c00000000000000014c000000000000000249000000000000000100490000000000000001085300000000000000056b617070614900000000000000010453000000000000000a6e6578745f696e64657849000000000000000108530000000000000006735f626974734200000000000000010d530000000000000009736565645f6b6579734c000000000000000442000000000000000400000000420000000000000004010101014200000000000000040202020242000000000000000403030303",  # noqa: E501
    "pooled_ot_receiver_midround": "0301000000a54d000000000000000753000000000000000763686f696365734200000000000000010d530000000000000005636f756e744900000000000000010453000000000000000866696e697368656446530000000000000006726573756c744e5300000000000000077365636f6e647344000000000000000053000000000000000b73746172745f696e646578490000000000000001005300000000000000077374617274656454",  # noqa: E501
    "yao_garbler": "1001000001314d000000000000000b53000000000000000866696e69736865644653000000000000000c676172626c65725f626974734200000000000000015353000000000000000d676172626c65725f636f756e74490000000000000001085300000000000000026f744e5300000000000000076f745f6d6f6465530000000000000004696b6e7053000000000000000b6f75747075745f626974734e5300000000000000096f75747075745f746f5300000000000000096576616c7561746f725300000000000000077365636f6e647344000000000000000053000000000000000473656564420000000000000020111111111111111111111111111111111111111111111111111111111111111153000000000000000b73656e745f7461626c6573465300000000000000077374617274656446",  # noqa: E501
    "yao_garbler_midround": "10010000037b4d000000000000000b53000000000000000866696e69736865644653000000000000000c676172626c65725f626974734200000000000000015353000000000000000d676172626c65725f636f756e74490000000000000001085300000000000000026f7442000000000000024202010000023c4d000000000000000453000000000000000866696e69736865644653000000000000000d6d6573736167655f70616972734c00000000000000084c000000000000000242000000000000001031b78b9bf8a61f04a262b61e31e525994200000000000000108636ca6d57855da0960617ea8bf12ab84c0000000000000002420000000000000010b1d29c6b8c8258051b34d4259f43c1e94200000000000000100653dd9d23a11aa12f5075d12557cec84c00000000000000024200000000000000108aa21875de8357cbe6773fcd24a2c8444200000000000000103d23598371a0156fd2139e399eb6c7654c00000000000000024200000000000000103c226e3a4430077cd64ea643d45676204200000000000000108ba32fcceb1345d8e22a07b76e4279014c00000000000000024200000000000000106463407278a9126ea66f21b846fe7123420000000000000010d3e20184d78a50ca920b804cfcea7e024c0000000000000002420000000000000010267243ed5de565069ad69727eedcac9442000000000000001091f3021bf2c627a2aeb236d354c8a3b54c000000000000000242000000000000001096f26bda47880f22eb17d9f312e1b8e442000000000000001021732a2ce8ab4d86df737807a8f5b7c54c0000000000000002420000000000000010fb4f3c062dd585543997ebfbeb14445e4200000000000000104cce7df082f6c7f00df34a0f51004b7f5300000000000000077365636f6e647344000000000000000053000000000000000773746172746564545300000000000000076f745f6d6f6465530000000000000004696b6e7053000000000000000b6f75747075745f626974734e5300000000000000096f75747075745f746f5300000000000000096576616c7561746f725300000000000000077365636f6e647344000000000000000053000000000000000473656564420000000000000020111111111111111111111111111111111111111111111111111111111111111153000000000000000b73656e745f7461626c6573465300000000000000077374617274656454",  # noqa: E501
    "yao_evaluator_midround": "11010000013d4d000000000000000653000000000000000866696e6973686564465300000000000000026f744200000000000000ab0301000000a54d000000000000000753000000000000000763686f6963657342000000000000000162530000000000000005636f756e744900000000000000010853000000000000000866696e697368656446530000000000000006726573756c744e5300000000000000077365636f6e647344000000000000000053000000000000000b73746172745f696e64657849000000000000000100530000000000000007737461727465645453000000000000000b6f75747075745f626974734e5300000000000000096f75747075745f746f5300000000000000096576616c7561746f725300000000000000077365636f6e64734400000000000000005300000000000000077374617274656454",  # noqa: E501
    "spam_client": "2001000000d74d000000000000000753000000000000000866656174757265734c00000000000000024c000000000000000249000000000000000103490000000000000001014c0000000000000002490000000000000001074900000000000000010253000000000000000866696e69736865644653000000000000000769735f7370616d4e5300000000000000077365636f6e6473440000000000000000530000000000000007737461727465644653000000000000000379616f4e53000000000000000d79616f5f616e645f676174657349000000000000000100",  # noqa: E501
    "spam_provider": "2101000000c54d00000000000000085300000000000000106177616974696e675f726571756573744653000000000000000862756666657265644c000000000000000142000000000000000c5a010300000001000000010553000000000000000565787472614d000000000000000053000000000000000866696e697368656446530000000000000005696e6e65724e53000000000000000770656e64696e674e5300000000000000077365636f6e64734400000000000000005300000000000000077374617274656446",  # noqa: E501
    "topic_client": "22010000010a4d000000000000000853000000000000000a63616e646964617465734c0000000000000002490000000000000001004900000000000000010253000000000000000a6465636f6d706f7365645453000000000000000866656174757265734c00000000000000024c000000000000000249000000000000000101490000000000000001014c0000000000000002490000000000000001024900000000000000010353000000000000000866696e6973686564465300000000000000077365636f6e6473440000000000000000530000000000000007737461727465644653000000000000000379616f4e53000000000000000d79616f5f616e645f676174657349000000000000000100",  # noqa: E501
    "topic_provider": "2301000001004d00000000000000085300000000000000106177616974696e675f726571756573744653000000000000000862756666657265644c000000000000000053000000000000000565787472614d000000000000000353000000000000000a6465636f6d706f7365645453000000000000000f6578747261637465645f746f7069634e530000000000000010696e6e65725f63616e646964617465734900000000000000010253000000000000000866696e697368656446530000000000000005696e6e65724e53000000000000000770656e64696e674e5300000000000000077365636f6e64734400000000000000005300000000000000077374617274656446",  # noqa: E501
    "noprv_client": "2401000000b54d000000000000000553000000000000000866656174757265734c00000000000000024c000000000000000249000000000000000101490000000000000001014c0000000000000002490000000000000001094900000000000000010253000000000000000866696e6973686564465300000000000000127072656469637465645f63617465676f72794e5300000000000000077365636f6e64734400000000000000005300000000000000077374617274656446",  # noqa: E501
    "noprv_provider": "2501000000554d000000000000000453000000000000000866696e697368656446530000000000000006726573756c744e5300000000000000077365636f6e64734400000000000000005300000000000000077374617274656446",  # noqa: E501
}


@pytest.fixture(scope="module")
def golden_circuit():
    return SpamCircuit.build(4)


@pytest.fixture(scope="module")
def noprv_model():
    import numpy as np

    from repro.classify.model import LinearModel

    rng = np.random.default_rng(7)
    return LinearModel(
        weights=rng.normal(size=(20, 2)),
        biases=np.zeros(2),
        category_names=["spam", "ham"],
    )


class _GoldenContext:
    """Builds each golden variant and restores each pinned encoding."""

    def __init__(self, dh_group, spam_setup, topic_setup, circuit, noprv_model):
        self.group = dh_group
        self.spam_protocol, self.spam_setup = spam_setup
        self.topic_protocol, self.topic_setup = topic_setup
        self.circuit = circuit
        self.classifier = NoPrivClassifier(noprv_model)

    def build(self, name):
        if name == "ot_pool":
            return _small_pool()
        if name == "pooled_ot_receiver_midround":
            machine = PooledIknpReceiverMachine(
                self.group, [1, 0, 1, 1], _deterministic_pool().receiver_state
            )
            machine.start()
            return _zeroed(machine)
        if name in ("yao_garbler", "yao_garbler_midround"):
            garbler = YaoGarblerSession(
                self.circuit.circuit,
                self.circuit.garbler_bits(3, 5),
                self.group,
                output_to="evaluator",
                ot_pool=_deterministic_pool(),
                garble_seed=b"\x11" * 32,
            )
            if name.endswith("midround"):
                garbler.start()
            return _zeroed(garbler)
        if name == "yao_evaluator_midround":
            evaluator = YaoEvaluatorSession(
                self.circuit.circuit,
                self.circuit.evaluator_bits(2, 6),
                self.group,
                output_to="evaluator",
                ot_pool=_deterministic_pool(),
            )
            evaluator.start()
            return _zeroed(evaluator)
        if name == "spam_client":
            return self.spam_protocol.client_session(self.spam_setup, {3: 1, 7: 2})
        if name == "spam_provider":
            provider = self.spam_protocol.provider_session(self.spam_setup)
            provider._awaiting_request = False
            provider._buffered = [OtPublicsFrame((5,))]
            return provider
        if name == "topic_client":
            return self.topic_protocol.client_session(
                self.topic_setup, {1: 1, 2: 3}, candidate_topics=[0, 2]
            )
        if name == "topic_provider":
            provider = self.topic_protocol.provider_session(self.topic_setup)
            provider._awaiting_request = False
            provider._decomposed = True
            provider._inner_candidates = 2
            return provider
        if name == "noprv_client":
            return NoPrivClientSession({1: 1, 9: 2})
        if name == "noprv_provider":
            return NoPrivProviderSession(self.classifier)
        raise AssertionError(name)

    def restore(self, name, state):
        if name == "ot_pool":
            return OtExtensionPool.restore(state)
        if name == "pooled_ot_receiver_midround":
            return PooledIknpReceiverMachine.restore(
                self.group, state, _deterministic_pool().receiver_state
            )
        if name in ("yao_garbler", "yao_garbler_midround"):
            return YaoGarblerSession.restore(
                state, self.circuit.circuit, self.group, ot_pool=_deterministic_pool()
            )
        if name == "yao_evaluator_midround":
            return YaoEvaluatorSession.restore(
                state, self.circuit.circuit, self.group, ot_pool=_deterministic_pool()
            )
        if name == "spam_client":
            return SpamClientSession.restore(self.spam_protocol, self.spam_setup, state)
        if name == "spam_provider":
            return SpamProviderSession.restore(self.spam_protocol, self.spam_setup, state)
        if name == "topic_client":
            return TopicClientSession.restore(self.topic_protocol, self.topic_setup, state)
        if name == "topic_provider":
            return TopicProviderSession.restore(self.topic_protocol, self.topic_setup, state)
        if name == "noprv_client":
            return NoPrivClientSession.restore(state)
        if name == "noprv_provider":
            return NoPrivProviderSession.restore(self.classifier, state)
        raise AssertionError(name)


@pytest.fixture(scope="module")
def golden_context(dh_group, spam_setup, topic_setup, golden_circuit, noprv_model):
    return _GoldenContext(dh_group, spam_setup, topic_setup, golden_circuit, noprv_model)


class TestGoldenSessionStates:
    @pytest.mark.parametrize("name", sorted(GOLDEN_STATES))
    def test_pinned_encoding(self, golden_context, name):
        assert golden_context.build(name).snapshot().to_bytes().hex() == GOLDEN_STATES[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN_STATES))
    def test_restore_roundtrip(self, golden_context, name):
        state = SessionState.from_bytes(bytes.fromhex(GOLDEN_STATES[name]))
        restored = golden_context.restore(name, state)
        assert restored.snapshot().to_bytes().hex() == GOLDEN_STATES[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN_STATES))
    def test_state_rides_the_wire_as_a_frame(self, name):
        codec = WireCodec()
        state = SessionState.from_bytes(bytes.fromhex(GOLDEN_STATES[name]))
        encoded = codec.encode(SessionStateFrame(state))
        decoded = codec.decode(encoded)
        assert isinstance(decoded, SessionStateFrame)
        assert decoded.state == state


class TestSessionStateValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError):
            SessionState(kind=0x7F, version=1, payload=b"")
        blob = SessionState(
            kind=SessionStateKind.OT_POOL, version=1, payload=b""
        ).to_bytes()
        with pytest.raises(WireFormatError):
            SessionState.from_bytes(b"\x7f" + blob[1:])

    def test_version_mismatch_refused_at_restore(self):
        state = SessionState(kind=SessionStateKind.NOPRV_CLIENT, version=99, payload=b"")
        with pytest.raises(SnapshotError, match="version"):
            NoPrivClientSession.restore(state)

    def test_wrong_kind_refused_at_restore(self):
        state = SessionState.from_bytes(bytes.fromhex(GOLDEN_STATES["noprv_provider"]))
        with pytest.raises(SnapshotError, match="kind"):
            NoPrivClientSession.restore(state)

    def test_malformed_payload_refused_at_restore(self):
        state = SessionState(
            kind=SessionStateKind.NOPRV_CLIENT, version=1, payload=b"\xff\xff"
        )
        with pytest.raises(SnapshotError):
            NoPrivClientSession.restore(state)

    def test_unsupported_sessions_refuse_to_snapshot(self, dh_group):
        from repro.crypto.ot import IknpReceiverMachine

        with pytest.raises(SnapshotError):
            IknpReceiverMachine(dh_group, [0, 1]).snapshot()


class TestSessionStores:
    @pytest.mark.parametrize("make_store", [InMemorySessionStore, None], ids=["memory", "file"])
    def test_put_get_delete_keys(self, make_store, tmp_path):
        store = make_store() if make_store else FileSessionStore(tmp_path)
        assert store.get("a") is None
        store.put("a", b"one")
        store.put("b", b"two")
        assert store.get("a") == b"one"
        assert store.keys() == ["a", "b"]
        store.put("a", b"overwritten")
        assert store.get("a") == b"overwritten"
        store.delete("a")
        store.delete("a")  # idempotent
        assert store.get("a") is None
        assert store.keys() == ["b"]

    def test_file_store_sanitizes_keys(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.put("shard/0:spam", b"blob")
        assert store.get("shard/0:spam") == b"blob"
        assert all(os.sep not in key for key in os.listdir(tmp_path))

    def test_file_store_keys_roundtrip_escaped_names(self, tmp_path):
        # keys() must return the *stored* keys (same contract as the
        # in-memory store), not the escaped filenames — get(keys()[i]) works.
        store = FileSessionStore(tmp_path)
        hostile = ["user@example.com", "a%2fb", "shard/1", "plain"]
        for key in hostile:
            store.put(key, key.encode())
        assert store.keys() == sorted(hostile)
        for key in store.keys():
            assert store.get(key) == key.encode()

    def test_file_store_survives_reopen(self, tmp_path):
        FileSessionStore(tmp_path).put("k", b"persisted")
        assert FileSessionStore(tmp_path).get("k") == b"persisted"


def _park_jobs(directory, kind, address, feature_sets, candidates=None):
    """Admit jobs into a wide-open window; returns (runtime, jobs, context)."""
    runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
    if kind == "spam":
        protocol, setup = directory.spam_of(address)
        jobs = [
            spam_job(protocol, setup, features, label=index,
                     ot_pool=directory.spam_pool_of(address))
            for index, features in enumerate(feature_sets)
        ]
    else:
        protocol, setup = directory.topics_of(address)
        jobs = [
            topic_job(protocol, setup, features, candidates, label=index,
                      ot_pool=directory.topic_pool_of(address))
            for index, features in enumerate(feature_sets)
        ]
    finished = runtime.serve_burst(jobs)
    assert finished == []  # everything is parked inside the open window
    context = {job.label: (kind, address) for job in jobs}
    return runtime, jobs, context


class TestMidWindowCheckpointRestore:
    """In-process checkpoint/restore of open decrypt windows, per protocol."""

    def test_spam_resumes_bit_identically(self, spam_setup, spam_truth):
        protocol, setup = spam_setup
        directory = MailboxDirectory()
        directory.register_spam("inproc@example.com", protocol, setup)
        runtime, jobs, context = _park_jobs(
            directory, "spam", "inproc@example.com", SPAM_EMAILS
        )
        blob = checkpoint_open_windows(runtime, directory, context)
        assert blob is not None

        # A "fresh process": new directory (so registration builds a *fresh*
        # pool, which the restore must override), new runtime, state from bytes.
        fresh = MailboxDirectory()
        fresh.register_spam("inproc@example.com", protocol, setup)
        restored = restore_open_windows(blob, fresh)
        assert [job_id for job_id, _, _, _ in restored] == [0, 1, 2]
        runtime2 = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
        restored_jobs = [job for _, _, _, job in restored]
        for job in restored_jobs:
            assert job.client.started and job.provider.started  # no re-execution
        runtime2.serve_burst(restored_jobs)
        finished = runtime2.drain()
        verdicts = {job.label: job.client.is_spam for job in finished}
        assert [verdicts[index] for index in range(len(SPAM_EMAILS))] == spam_truth

    def test_topics_resume_bit_identically(self, topic_setup, small_topic_model):
        protocol, setup = topic_setup
        truths = [small_topic_model.predict(features) for features in TOPIC_EMAILS]
        candidates = sorted(set(truths) | {0, 1, 2})
        directory = MailboxDirectory()
        directory.register_topics("inproc-topics@example.com", protocol, setup)
        runtime, jobs, context = _park_jobs(
            directory, "topics", "inproc-topics@example.com", TOPIC_EMAILS, candidates
        )
        blob = checkpoint_open_windows(runtime, directory, context)
        fresh = MailboxDirectory()
        fresh.register_topics("inproc-topics@example.com", protocol, setup)
        restored = restore_open_windows(blob, fresh)
        runtime2 = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
        runtime2.serve_burst([job for _, _, _, job in restored])
        finished = runtime2.drain()
        extracted = {job.label: job.provider.extracted_topic for job in finished}
        assert [extracted[index] for index in range(len(TOPIC_EMAILS))] == truths

    def test_empty_runtime_checkpoints_to_none(self, spam_setup):
        protocol, setup = spam_setup
        directory = MailboxDirectory()
        runtime = ProviderRuntime()
        assert checkpoint_open_windows(runtime, directory, {}) is None


class TestCrashRecovery:
    """A SIGKILLed shard worker resumes from its FileSessionStore checkpoint."""

    def test_sigkill_mid_window_resumes_bit_identical(
        self, spam_setup, spam_truth, tmp_path
    ):
        protocol, setup = spam_setup
        address = "sigkill@example.com"
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            job_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS])
            assert runtime.outstanding_count() == len(SPAM_EMAILS)
            # SIGKILL: the worker gets no chance to do anything at death; the
            # only state that survives is the checkpoint it wrote when it
            # acked the burst.
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            resubmitted = runtime.restart_shard(0)
            # Zero resubmissions == every in-flight email resumed from its
            # snapshot; nothing recomputed from features.
            assert resubmitted == 0
            runtime.drain()
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
            stats = runtime.shard_stats()
        assert verdicts == spam_truth
        assert stats[0]["restored_jobs"] == len(SPAM_EMAILS)
        assert stats[0]["outstanding_jobs"] == 0

    def test_sigkill_recovery_for_topics(
        self, topic_setup, small_topic_model, tmp_path
    ):
        protocol, setup = topic_setup
        truths = [small_topic_model.predict(features) for features in TOPIC_EMAILS]
        candidates = sorted(set(truths) | {0, 1})
        address = "sigkill-topics@example.com"
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as runtime:
            runtime.register_topics(address, protocol, setup)
            job_ids = runtime.submit_topics(
                [(address, features, candidates) for features in TOPIC_EMAILS]
            )
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            assert runtime.restart_shard(0) == 0
            runtime.drain()
            extracted = [
                runtime.take_result(job_id).extracted_topic for job_id in job_ids
            ]
        assert extracted == truths

    def test_sigkill_restore_does_not_double_count_metrics(
        self, spam_setup, tmp_path
    ):
        # The aggregation protocol under real process death: the killed
        # incarnation served nothing (its emails were parked mid-window), the
        # replacement resumes them from the checkpoint and serves each once.
        # emails_served_total across incarnations must be exactly the stream
        # size — folding the dead worker's snapshot twice, or counting a
        # restored email in both incarnations, would inflate it.
        protocol, setup = spam_setup
        address = "sigkill-metrics@example.com"
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            runtime.submit_spam([(address, f) for f in SPAM_EMAILS])
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            assert runtime.restart_shard(0) == 0  # resumed from the snapshot
            runtime.drain()
            runtime.shard_stats()  # extra refresh must not re-fold anything
            snapshot = runtime.aggregated_metrics()
        served = [
            entry
            for entry in snapshot["counters"]
            if entry["name"] == "emails_served_total"
        ]
        assert served and served[0]["value"] == len(SPAM_EMAILS)
        flushes = [
            entry
            for entry in snapshot["histograms"]
            if entry["name"] == "window_flush_sessions"
        ]
        assert flushes and flushes[0]["count"] >= 1

    def test_restart_without_checkpoint_still_recomputes(self, spam_setup, spam_truth):
        # No checkpoint_dir: the legacy recompute path must keep working.
        protocol, setup = spam_setup
        address = "recompute@example.com"
        with ShardedRuntime(num_shards=1, window_bursts=100) as runtime:
            runtime.register_spam(address, protocol, setup)
            job_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS])
            resubmitted = runtime.restart_shard(0)
            assert resubmitted == len(SPAM_EMAILS)
            runtime.drain()
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
        assert verdicts == spam_truth

    def test_checkpoint_cleared_after_drain(self, spam_setup, tmp_path):
        protocol, setup = spam_setup
        address = "clears@example.com"
        store = FileSessionStore(tmp_path)
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            runtime.submit_spam([(address, SPAM_EMAILS[0])])
            assert store.read_records("shard-0")
            runtime.drain()
            assert store.read_records("shard-0") is None

    def test_stale_checkpoint_from_another_parent_is_refused(
        self, spam_setup, spam_truth, tmp_path
    ):
        # A leftover checkpoint from an earlier ShardedRuntime in the same
        # directory must NOT be resumed by a new parent: its job ids would
        # collide with the new parent's, delivering another run's verdicts.
        protocol, setup = spam_setup
        address = "stale@example.com"
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as old_parent:
            old_parent.register_spam(address, protocol, setup)
            old_parent.submit_spam([(address, SPAM_EMAILS[0])])
            # Kill the worker so close() cannot drain the window: the
            # checkpoint survives the old parent.
            os.kill(old_parent.worker_pid(0), signal.SIGKILL)
            old_parent.join_worker(0)
        store = FileSessionStore(tmp_path)
        assert store.read_records("shard-0")
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as new_parent:
            new_parent.register_spam(address, protocol, setup)
            # Restart while the stale log is still on disk and the new
            # parent has nothing outstanding: the foreign-incarnation
            # checkpoint must be refused (and dropped), not resumed as
            # phantom jobs.
            assert new_parent.restart_shard(0) == 0
            assert store.read_records("shard-0") is None
            assert all(
                stat["restored_jobs"] == 0 for stat in new_parent.shard_stats()
            )
            job_ids = new_parent.submit_spam([(address, f) for f in SPAM_EMAILS])
            new_parent.drain()
            verdicts = [new_parent.take_result(job_id).is_spam for job_id in job_ids]
        assert verdicts == spam_truth

    def test_poisoned_checkpoint_falls_back_to_recompute(
        self, spam_setup, spam_truth, tmp_path
    ):
        # An unreadable checkpoint must degrade to resubmission, not fail
        # recovery — and must be deleted so retries do not re-hit it.
        # Mid-file damage in an append-only log is tampering (appends only
        # ever extend it), so the AEAD refusal has to cover every record.
        protocol, setup = spam_setup
        address = "poisoned@example.com"
        store = FileSessionStore(tmp_path)
        log_path = tmp_path / "shard-0.statelog"
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            job_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS])
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            poisoned = bytearray(log_path.read_bytes())
            poisoned[8] ^= 0xFF  # flip a byte inside the first sealed record
            log_path.write_bytes(bytes(poisoned))
            with pytest.raises(SnapshotError):
                store.read_records("shard-0")
            resubmitted = runtime.restart_shard(0)
            assert resubmitted == len(SPAM_EMAILS)  # recompute fallback
            assert log_path.read_bytes() != bytes(poisoned)  # dropped, not kept
            runtime.drain()
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
        assert verdicts == spam_truth

    def test_torn_tail_loses_only_the_final_batch(
        self, spam_setup, spam_truth, tmp_path
    ):
        # A crash mid-append tears the file inside the *last* batch.  The
        # torn tail is dropped silently (its emails recover by resubmission);
        # everything before it still restores.
        protocol, setup = spam_setup
        address = "torn@example.com"
        store = FileSessionStore(tmp_path)
        log_path = tmp_path / "shard-0.statelog"
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=tmp_path
        ) as runtime:
            runtime.register_spam(address, protocol, setup)
            job_ids = runtime.submit_spam([(address, f) for f in SPAM_EMAILS])
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            intact = store.read_records("shard-0")
            log_path.write_bytes(log_path.read_bytes()[:-3])
            survivors = store.read_records("shard-0")
            assert len(survivors) == len(intact) - 1  # only the tail record fell
            assert survivors == intact[: len(survivors)]
            runtime.restart_shard(0)
            runtime.drain()
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
        assert verdicts == spam_truth


class TestShardCheckpointLog:
    """The append-only checkpoint log: bounded writes, dedup, compaction."""

    def _parked(self, spam_setup):
        protocol, setup = spam_setup
        directory = MailboxDirectory()
        directory.register_spam("log@example.com", protocol, setup)
        runtime, _jobs, context = _park_jobs(
            directory, "spam", "log@example.com", SPAM_EMAILS
        )
        return directory, runtime, context

    def test_unchanged_windows_are_never_rewritten(self, spam_setup, tmp_path):
        # The whole point of the log: a sync where nothing moved appends
        # nothing, so write cost tracks churn instead of backlog width.
        directory, runtime, context = self._parked(spam_setup)
        store = FileSessionStore(tmp_path)
        log = ShardCheckpointLog(store, "shard-0")
        log.sync(runtime, directory, context)
        size = (tmp_path / "shard-0.statelog").stat().st_size
        log.sync(runtime, directory, context)
        assert (tmp_path / "shard-0.statelog").stat().st_size == size

    def test_load_folds_to_a_restorable_blob_and_compacts(
        self, spam_setup, spam_truth, tmp_path
    ):
        protocol, setup = spam_setup
        directory, runtime, context = self._parked(spam_setup)
        store = FileSessionStore(tmp_path)
        ShardCheckpointLog(store, "shard-0").sync(runtime, directory, context)
        # A fresh log instance (a replacement worker) folds the records into
        # a blob the plain blob-restore path accepts unchanged.
        blob = ShardCheckpointLog(store, "shard-0").load()
        fresh = MailboxDirectory()
        fresh.register_spam("log@example.com", protocol, setup)
        restored = restore_open_windows(blob, fresh)
        assert [job_id for job_id, _, _, _ in restored] == [0, 1, 2]
        runtime2 = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
        runtime2.serve_burst([job for *_, job in restored])
        verdicts = {job.label: job.client.is_spam for job in runtime2.drain()}
        assert [verdicts[i] for i in range(len(SPAM_EMAILS))] == spam_truth
        # Compaction rewrote the file, but to an equivalent fold.
        assert ShardCheckpointLog(store, "shard-0").load() == blob

    def test_drained_log_is_deleted(self, spam_setup, tmp_path):
        directory, runtime, context = self._parked(spam_setup)
        store = FileSessionStore(tmp_path)
        log = ShardCheckpointLog(store, "shard-0")
        log.sync(runtime, directory, context)
        assert store.read_records("shard-0")
        runtime.drain()
        log.sync(runtime, directory, context)
        assert store.read_records("shard-0") is None


class TestNoPrivResultFidelity:
    def test_provider_result_survives_roundtrip_field_for_field(self, noprv_model):
        classifier = NoPrivClassifier(noprv_model)
        provider = NoPrivProviderSession(classifier)
        provider.started = True
        from repro.twopc.wire import FeaturesFrame

        provider.handle(FeaturesFrame(((1, 2), (4, 1))))
        restored = NoPrivProviderSession.restore(classifier, provider.snapshot())
        assert restored.result is not None
        assert restored.result.predicted_category == provider.result.predicted_category
        assert restored.result.provider_seconds == provider.result.provider_seconds
        assert restored.result.features_used == provider.result.features_used
        assert restored.snapshot() == provider.snapshot()
