"""Tests for the GLLM / Pretzel packing layouts and packed dot products (§4.2)."""

import numpy as np
import pytest

from repro.crypto.packing import PackedLinearModel, PackingLayout, decrypt_dot_products
from repro.exceptions import PackingError, ParameterError


def _reference_dot_products(matrix_rows, features):
    rows = np.array(matrix_rows, dtype=np.int64)
    scores = rows[-1].copy()
    for index, frequency in features:
        scores += frequency * rows[index]
    return list(scores)


class TestPackingLayout:
    def test_across_row_geometry_small_b(self):
        layout = PackingLayout(num_columns=2, num_rows=101, slots_per_ciphertext=256, across_rows=True)
        assert layout.full_segments == 0
        assert layout.leftover_columns == 2
        assert layout.rows_per_leftover_ciphertext == 128
        assert layout.leftover_output_offset == 127 * 2
        assert layout.ciphertext_count() == 1

    def test_legacy_geometry_small_b(self):
        layout = PackingLayout(num_columns=2, num_rows=101, slots_per_ciphertext=256, across_rows=False)
        assert layout.rows_per_leftover_ciphertext == 1
        assert layout.leftover_output_offset == 0
        assert layout.ciphertext_count() == 101

    def test_geometry_with_full_segments(self):
        layout = PackingLayout(num_columns=600, num_rows=11, slots_per_ciphertext=256, across_rows=True)
        assert layout.full_segments == 2
        assert layout.leftover_columns == 88
        assert layout.ciphertext_count() == 2 * 11 + -(-11 // (256 // 88))

    def test_column_location(self):
        layout = PackingLayout(num_columns=600, num_rows=11, slots_per_ciphertext=256, across_rows=True)
        assert layout.column_location(10) == ("segment", 0)
        assert layout.column_location(300) == ("segment", 1)
        kind, slot = layout.column_location(599)
        assert kind == "leftover"
        assert slot == layout.leftover_output_offset + (599 - 512)

    def test_column_location_out_of_range(self):
        layout = PackingLayout(num_columns=4, num_rows=3, slots_per_ciphertext=8, across_rows=True)
        with pytest.raises(ParameterError):
            layout.column_location(4)

    def test_exact_multiple_has_no_leftover(self):
        layout = PackingLayout(num_columns=512, num_rows=5, slots_per_ciphertext=256, across_rows=True)
        assert layout.leftover_columns == 0
        assert layout.ciphertext_count() == 2 * 5


class TestPackedDotProducts:
    @pytest.fixture(scope="class")
    def small_matrix(self):
        rng = np.random.default_rng(7)
        # 40 feature rows + 1 bias row, 2 columns, small non-negative values.
        return rng.integers(0, 200, size=(41, 2)).tolist()

    def test_across_row_dot_products_match_reference(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        features = [(0, 1), (5, 2), (17, 1), (39, 3)]
        result = model.dot_products(features)
        assert decrypt_dot_products(bv_scheme, bv_keys, result) == _reference_dot_products(
            small_matrix, features
        )

    def test_legacy_packing_dot_products_match_reference(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=False)
        features = [(2, 1), (3, 1), (40, 1)]
        result = model.dot_products(features)
        assert decrypt_dot_products(bv_scheme, bv_keys, result) == _reference_dot_products(
            small_matrix, features
        )

    def test_paillier_dot_products_match_reference(self, paillier_scheme, paillier_keys, small_matrix):
        model = PackedLinearModel.encrypt(
            paillier_scheme, paillier_keys.public, small_matrix, across_rows=False
        )
        features = [(1, 1), (7, 4), (22, 1)]
        result = model.dot_products(features)
        assert decrypt_dot_products(paillier_scheme, paillier_keys, result) == _reference_dot_products(
            small_matrix, features
        )

    def test_paillier_falls_back_to_legacy_packing(self, paillier_scheme, paillier_keys, small_matrix):
        model = PackedLinearModel.encrypt(
            paillier_scheme, paillier_keys.public, small_matrix, across_rows=True
        )
        assert model.layout.across_rows is False

    def test_multi_segment_matrix(self, bv_scheme, bv_keys):
        # More columns than slots: two full segments plus a leftover segment.
        num_slots = bv_scheme.num_slots
        columns = num_slots + 7
        rng = np.random.default_rng(11)
        matrix = rng.integers(0, 50, size=(9, columns)).tolist()
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, matrix, across_rows=True)
        features = [(0, 1), (4, 2)]
        result = model.dot_products(features)
        assert decrypt_dot_products(bv_scheme, bv_keys, result) == _reference_dot_products(
            matrix, features
        )

    def test_empty_feature_vector_gives_bias_row(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        result = model.dot_products([])
        assert decrypt_dot_products(bv_scheme, bv_keys, result) == list(small_matrix[-1])

    def test_across_row_storage_is_much_smaller(self, bv_scheme, bv_keys, small_matrix):
        pretzel = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        legacy = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=False)
        assert pretzel.storage_bytes() < legacy.storage_bytes() / 10

    def test_out_of_range_feature_rejected(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        with pytest.raises(PackingError):
            model.dot_products([(41, 1)])  # the bias row is not addressable as a feature

    def test_ragged_matrix_rejected(self, bv_scheme, bv_keys):
        with pytest.raises(PackingError):
            PackedLinearModel.encrypt(bv_scheme, bv_keys.public, [[1, 2], [3]], across_rows=True)

    def test_empty_matrix_rejected(self, bv_scheme, bv_keys):
        with pytest.raises(PackingError):
            PackedLinearModel.encrypt(bv_scheme, bv_keys.public, [], across_rows=True)

    def test_column_slot_map_covers_all_columns(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        mapping = model.column_slot_map()
        assert set(mapping) == {0, 1}


class TestBatchedAccumulation:
    """The vectorised dot-product path must be bit-identical to the generic chain."""

    @pytest.fixture(scope="class")
    def small_matrix(self):
        rng = np.random.default_rng(7)
        return rng.integers(0, 200, size=(41, 2)).tolist()

    @pytest.fixture(scope="class")
    def wide_matrix(self, bv_scheme):
        rng = np.random.default_rng(23)
        columns = bv_scheme.num_slots + 19  # one full segment plus a leftover
        return rng.integers(0, 300, size=(25, columns)).tolist()

    def _assert_paths_agree(self, scheme, keys, model, features):
        batched = model.dot_products(features)
        bias = (model.layout.num_rows - 1, 1)
        generic = model._dot_products_generic(
            [(row, int(freq)) for row, freq in features if freq > 0] + [bias]
        )
        decrypted_batched = decrypt_dot_products(scheme, keys, batched)
        decrypted_generic = decrypt_dot_products(scheme, keys, generic)
        assert decrypted_batched == decrypted_generic
        return decrypted_batched

    def test_across_row_batched_matches_generic(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        features = [(0, 3), (5, 2), (17, 1), (39, 7), (12, 1)]
        values = self._assert_paths_agree(bv_scheme, bv_keys, model, features)
        assert values == _reference_dot_products(small_matrix, features)

    def test_multi_segment_batched_matches_generic(self, bv_scheme, bv_keys, wide_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, wide_matrix, across_rows=True)
        features = [(0, 1), (3, 4), (11, 2), (24, 1)]
        values = self._assert_paths_agree(bv_scheme, bv_keys, model, features)
        assert values == _reference_dot_products(wide_matrix, features)

    def test_legacy_layout_batched_matches_generic(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=False)
        features = [(2, 1), (3, 6), (40, 2)]
        values = self._assert_paths_agree(bv_scheme, bv_keys, model, features)
        assert values == _reference_dot_products(small_matrix, features)

    def test_duplicate_feature_rows_accumulate(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        features = [(4, 1), (4, 2), (9, 3)]
        values = self._assert_paths_agree(bv_scheme, bv_keys, model, features)
        assert values == _reference_dot_products(small_matrix, features)

    def test_zero_frequency_features_are_skipped(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        result = model.dot_products([(1, 0), (2, -1), (6, 2)])
        assert decrypt_dot_products(bv_scheme, bv_keys, result) == _reference_dot_products(
            small_matrix, [(6, 2)]
        )

    def test_stacks_are_cached_across_emails(self, bv_scheme, bv_keys, small_matrix):
        model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, small_matrix, across_rows=True)
        model.dot_products([(0, 1)])
        first_stack = model._leftover_stack
        model.dot_products([(1, 1)])
        assert model._leftover_stack is first_stack
