"""Trace-driven workload tests: generation, virtual time, replay, control law.

The latency-SLO layer stands on three legs — a seeded trace generator, a
virtual clock that owns replay time, and the small rate-estimation/control
utilities — and the regression gate in ``benchmarks/regress.py`` assumes all
three are deterministic and honest.  These tests pin each leg down.
"""

import math
import time

import pytest

from repro.core.runtime import DecryptScheduler, ProviderRuntime, spam_job
from repro.mail import (
    ReplayGuard,
    TraceEvent,
    TraceSpec,
    VirtualClock,
    generate_trace,
    serve_trace,
)
from repro.twopc.spam import SpamFilterProtocol
from repro.utils.timing import (
    AdaptiveWindowController,
    EwmaArrivalRate,
    percentile,
    summarize_latencies,
)

SPAM_EMAILS = [
    {1: 1, 5: 1, 9: 1},
    {100: 1, 150: 1, 199: 1, 42: 1},
    {0: 1},
    {i: 1 for i in range(0, 200, 7)},
]


@pytest.fixture(scope="module")
def spam_setup(bv_scheme, dh_group, small_spam_model):
    protocol = SpamFilterProtocol(bv_scheme, dh_group)
    return protocol, protocol.setup(small_spam_model)


class TestGenerateTrace:
    SPEC = TraceSpec(
        mailboxes=50,
        mean_rate_per_second=40.0,
        duration_seconds=5.0,
        duplicate_fraction=0.05,
        seed=123,
    )

    def test_same_seed_same_schedule(self):
        # The latency gate replays one trace across every arm; determinism
        # is what makes that comparison paired.
        assert generate_trace(self.SPEC) == generate_trace(self.SPEC)

    def test_different_seeds_differ(self):
        other = TraceSpec(
            mailboxes=50,
            mean_rate_per_second=40.0,
            duration_seconds=5.0,
            duplicate_fraction=0.05,
            seed=124,
        )
        assert generate_trace(self.SPEC) != generate_trace(other)

    def test_arrivals_are_ordered_and_bounded(self):
        events = generate_trace(self.SPEC)
        times = [event.arrival_seconds for event in events]
        assert times == sorted(times)
        assert all(0.0 <= t < self.SPEC.duration_seconds for t in times)
        # Thinned Poisson at these settings lands near the mean rate.
        assert 0.5 < len(events) / (40.0 * 5.0) < 2.0

    def test_mailbox_volume_is_heavy_tailed(self):
        events = generate_trace(self.SPEC)
        volumes: dict[str, int] = {}
        for event in events:
            volumes[event.mailbox] = volumes.get(event.mailbox, 0) + 1
        ranked = sorted(volumes.values(), reverse=True)
        # Zipf: the hottest mailbox carries many times the median's traffic.
        assert ranked[0] >= 5 * ranked[len(ranked) // 2]

    def test_sequence_numbers_count_up_per_sender(self):
        events = generate_trace(self.SPEC)
        next_expected: dict[str, int] = {}
        for event in events:
            if event.duplicate:
                continue
            assert event.sequence_number == next_expected.get(event.sender, 0)
            next_expected[event.sender] = event.sequence_number + 1

    def test_duplicates_replay_an_earlier_identity(self):
        events = generate_trace(self.SPEC)
        duplicates = [event for event in events if event.duplicate]
        assert duplicates  # 5% of ~200 events
        fresh = {(event.sender, event.sequence_number) for event in events if not event.duplicate}
        assert all((dup.sender, dup.sequence_number) in fresh for dup in duplicates)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(mailboxes=0)
        with pytest.raises(ValueError):
            TraceSpec(mean_rate_per_second=0.0)
        with pytest.raises(ValueError):
            TraceSpec(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            TraceSpec(burst_rate_multiplier=0.5)
        with pytest.raises(ValueError):
            TraceSpec(duplicate_fraction=1.0)


class TestVirtualClock:
    def test_advance_is_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        clock.advance_to(1.0)  # never backwards
        assert clock() == 3.0
        clock.advance(0.5)
        assert clock() == 3.5
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_charge_flows_and_accumulates(self):
        clock = VirtualClock(start=10.0)

        readings = []

        def call():
            readings.append(clock())
            time.sleep(0.01)
            readings.append(clock())

        _, elapsed = clock.charge(call)
        assert elapsed >= 0.01
        assert clock() == pytest.approx(10.0 + elapsed)
        # Mid-call reads saw time flowing, not the stale entry timestamp.
        assert readings[0] >= 10.0
        assert readings[1] - readings[0] >= 0.01

    def test_cannot_jump_while_charging(self):
        clock = VirtualClock()

        def call():
            with pytest.raises(ValueError):
                clock.advance_to(99.0)
            with pytest.raises(ValueError):
                clock.advance(1.0)

        clock.charge(call)


class TestPercentiles:
    def test_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == 2.5
        assert percentile([7.0], 99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summary_schema(self):
        summary = summarize_latencies([0.1, 0.2, 0.3])
        assert set(summary) == {"count", "mean", "max", "p50", "p95", "p99"}
        assert summary["count"] == 3.0
        assert summary["p50"] == pytest.approx(0.2)
        empty = summarize_latencies([])
        assert empty["count"] == 0.0 and empty["p99"] == 0.0


class TestEwmaArrivalRate:
    def test_sustained_stream_converges_to_true_rate(self):
        estimator = EwmaArrivalRate(alpha=0.3, half_life_seconds=0.25)
        for step in range(1, 201):
            estimator.observe(1, step * 0.01)  # 100 items/s for 2 s
        assert estimator.rate(2.0) == pytest.approx(100.0, rel=0.1)

    def test_clump_does_not_spike_the_estimate(self):
        # The regression that motivated interval aggregation: three arrivals
        # with millisecond gaps must not read as hundreds per second.
        estimator = EwmaArrivalRate(alpha=0.3, half_life_seconds=0.25)
        for gap_index in range(3):
            estimator.observe(1, 1.0 + 0.001 * gap_index)
        assert estimator.rate(1.01) < 1.0

    def test_idle_decay_halves_per_half_life(self):
        estimator = EwmaArrivalRate(alpha=1.0, half_life_seconds=1.0)
        estimator.observe(1, 0.0)
        for step in range(1, 11):
            estimator.observe(10, step * 1.0)  # 10 items/s, slow enough to fold
        hot = estimator.rate(10.0)
        assert estimator.rate(11.0) == pytest.approx(hot / 2.0)
        assert estimator.rate(12.0) == pytest.approx(hot / 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaArrivalRate(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaArrivalRate(half_life_seconds=0.0)
        with pytest.raises(ValueError):
            EwmaArrivalRate(min_interval_seconds=0.0)
        with pytest.raises(ValueError):
            EwmaArrivalRate().observe(-1, 0.0)


class TestAdaptiveWindowController:
    def _controller(self):
        return AdaptiveWindowController(
            min_delay_seconds=0.002,
            max_delay_seconds=0.25,
            target_batch_items=16,
        )

    def test_quiet_stream_gets_min_delay(self):
        controller = self._controller()
        assert controller.delay_seconds(0.0) == pytest.approx(0.002)
        controller.observe(1, 0.0)
        controller.observe(1, 5.0)  # one item every 5 s
        assert controller.delay_seconds(5.0) < 0.01

    def test_hot_stream_gets_max_delay(self):
        controller = self._controller()
        # 200 items/s sustained, far above target/cap = 64/s.
        for step in range(1, 101):
            controller.observe(1, step * 0.005)
        assert controller.observe(1, 0.505) == pytest.approx(0.25)

    def test_convex_response_keeps_marginal_rates_cheap(self):
        controller = self._controller()
        # Force a mid-scale estimate: fill 0.25 squared is ~6% of the span.
        controller.estimator._rate = 16.0  # fill = 16 / 64
        controller.estimator._last_update = 0.0
        delay = controller.delay_seconds(0.0)
        assert delay < 0.002 + (0.25 - 0.002) * 0.25  # well under a linear law
        assert delay == pytest.approx(0.002 + (0.25 - 0.002) * 0.25**2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWindowController(min_delay_seconds=-0.001)
        with pytest.raises(ValueError):
            AdaptiveWindowController(max_delay_seconds=0.001, min_delay_seconds=0.002)
        with pytest.raises(ValueError):
            AdaptiveWindowController(target_batch_items=0)
        with pytest.raises(ValueError):
            AdaptiveWindowController(response_exponent=0.5)


class TestServeTrace:
    SPEC = TraceSpec(
        mailboxes=3,
        senders_per_mailbox=2,
        mean_rate_per_second=5.0,
        duration_seconds=2.0,
        duplicate_fraction=0.2,
        seed=7,
    )

    def _replay(self, spam_setup, cost_model):
        protocol, setup = spam_setup
        events = generate_trace(self.SPEC)
        clock = VirtualClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=10**9, max_delay_seconds=0.05, clock=clock
            )
        )
        features_by_mailbox = {
            f"user{index}@trace.example": SPAM_EMAILS[index % len(SPAM_EMAILS)]
            for index in range(self.SPEC.mailboxes)
        }
        report = serve_trace(
            runtime,
            events,
            lambda event: spam_job(
                protocol, setup, features_by_mailbox[event.mailbox], label=event.sender
            ),
            clock,
            replay_guard=ReplayGuard(),
            cost_model=cost_model,
        )
        return events, report

    def test_real_runtime_serves_the_whole_trace(self, spam_setup):
        events, report = self._replay(spam_setup, cost_model=lambda size: 0.01 + 0.002 * size)
        fresh = [event for event in events if not event.duplicate]
        duplicates = len(events) - len(fresh)
        assert report.served == len(fresh)
        assert report.rejected_duplicates == duplicates > 0
        assert len(report.latencies) == report.served
        # Every latency includes at least its own batch's service charge,
        # and the 50 ms age trigger bounds the window wait.
        assert all(latency > 0.01 for latency in report.latencies)
        assert max(report.latencies) < 1.0
        assert report.provider_cpu_seconds > 0.0
        assert sum(report.decrypt_batch_sizes) > 0

    def test_cost_model_replay_is_deterministic(self, spam_setup):
        cost_model = lambda size: 0.01 + 0.002 * size
        _, first = self._replay(spam_setup, cost_model)
        _, second = self._replay(spam_setup, cost_model)
        # Bit-identical virtual timelines: this is what lets a hard-fail
        # regression gate compare policies without wall-clock jitter.
        assert first.latencies == second.latencies
        assert first.decrypt_batch_sizes == second.decrypt_batch_sizes

    def test_summary_row_shape(self, spam_setup):
        _, report = self._replay(spam_setup, cost_model=lambda size: 0.01)
        row = report.summary()
        assert row["served"] == float(report.served)
        assert row["throughput_per_cpu_second"] > 0.0
        assert row["latency_p99"] >= row["latency_p50"] > 0.0
        assert row["mean_decrypt_batch"] >= 1.0
        # The batch-size distribution row rides along: p95 can never sit
        # below the mean's floor and must bound the observed maximum.
        assert row["p95_decrypt_batch"] >= 1.0
        assert row["p95_decrypt_batch"] <= max(report.decrypt_batch_sizes)
