"""Tests for the two AHE schemes (Paillier and XPIR-BV) behind the common interface."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.paillier import PaillierScheme
from repro.exceptions import ParameterError

SLOT_VALUES = st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=8)


def _schemes(request):
    return request.getfixturevalue("bv_scheme"), request.getfixturevalue("paillier_scheme")


@pytest.fixture(params=["bv", "paillier"])
def scheme_and_keys(request, bv_scheme, bv_keys, paillier_scheme, paillier_keys):
    if request.param == "bv":
        return bv_scheme, bv_keys
    return paillier_scheme, paillier_keys


class TestCommonInterface:
    def test_encrypt_decrypt_roundtrip(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        values = [1, 2, 3, 4, 2**31, 0]
        ciphertext = scheme.encrypt_slots(keys.public, values)
        decrypted = scheme.decrypt_slots(keys, ciphertext)
        assert decrypted[: len(values)] == values
        assert all(value == 0 for value in decrypted[len(values):])

    def test_homomorphic_addition(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        a = scheme.encrypt_slots(keys.public, [10, 20, 30])
        b = scheme.encrypt_slots(keys.public, [1, 2, 3])
        total = scheme.decrypt_slots(keys, scheme.add(a, b))
        assert total[:3] == [11, 22, 33]

    def test_scalar_multiplication(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        ciphertext = scheme.encrypt_slots(keys.public, [5, 7])
        result = scheme.decrypt_slots(keys, scheme.scalar_mul(ciphertext, 6))
        assert result[:2] == [30, 42]

    def test_scalar_zero_annihilates(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        ciphertext = scheme.encrypt_slots(keys.public, [5, 7])
        result = scheme.decrypt_slots(keys, scheme.scalar_mul(ciphertext, 0))
        assert result[:2] == [0, 0]

    def test_slot_value_out_of_range_rejected(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        with pytest.raises(ParameterError):
            scheme.encrypt_slots(keys.public, [scheme.slot_modulus])

    def test_too_many_slots_rejected(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        with pytest.raises(ParameterError):
            scheme.encrypt_slots(keys.public, [0] * (scheme.num_slots + 1))

    def test_negative_scalar_rejected(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        ciphertext = scheme.encrypt_slots(keys.public, [1])
        with pytest.raises(ParameterError):
            scheme.scalar_mul(ciphertext, -2)

    def test_ciphertext_size_reported(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        ciphertext = scheme.encrypt_slots(keys.public, [1])
        assert ciphertext.size_bytes == scheme.ciphertext_size_bytes() > 0

    def test_encrypt_single_decrypt_single(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        assert scheme.decrypt_single(keys, scheme.encrypt_single(keys.public, 999)) == 999

    def test_encryption_randomised(self, scheme_and_keys):
        scheme, keys = scheme_and_keys
        first = scheme.encrypt_slots(keys.public, [1, 2])
        second = scheme.encrypt_slots(keys.public, [1, 2])
        assert first.payload is not second.payload
        # Both decrypt identically even though the ciphertexts differ.
        assert scheme.decrypt_slots(keys, first)[:2] == scheme.decrypt_slots(keys, second)[:2]

    @given(values=SLOT_VALUES)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_additive_homomorphism_property(self, scheme_and_keys, values):
        scheme, keys = scheme_and_keys
        half = (scheme.slot_modulus // 2) - 1
        clipped = [value % half for value in values[: scheme.num_slots]]
        a = scheme.encrypt_slots(keys.public, clipped)
        b = scheme.encrypt_slots(keys.public, clipped)
        doubled = scheme.decrypt_slots(keys, scheme.add(a, b))
        assert doubled[: len(clipped)] == [2 * value for value in clipped]


class TestBvSpecific:
    def test_slot_shift_moves_values_up(self, bv_scheme, bv_keys):
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [9, 8, 7])
        shifted = bv_scheme.decrypt_slots(bv_keys, bv_scheme.shift_up(ciphertext, 4))
        assert shifted[4:7] == [9, 8, 7]

    def test_shift_then_add_aligns_rows(self, bv_scheme, bv_keys):
        # The across-row packing primitive: add row [a, b] (slots 0-1) into the
        # output region at slots 2-3 of another ciphertext.
        row = bv_scheme.encrypt_slots(bv_keys.public, [3, 4])
        accumulator = bv_scheme.encrypt_slots(bv_keys.public, [0, 0, 10, 20])
        combined = bv_scheme.add(accumulator, bv_scheme.shift_up(row, 2))
        decrypted = bv_scheme.decrypt_slots(bv_keys, combined)
        assert decrypted[2:4] == [13, 24]

    def test_slot_arithmetic_wraps_modulo_slot_modulus(self, bv_scheme, bv_keys):
        top = bv_scheme.slot_modulus - 1
        a = bv_scheme.encrypt_slots(bv_keys.public, [top])
        b = bv_scheme.encrypt_slots(bv_keys.public, [2])
        assert bv_scheme.decrypt_slots(bv_keys, bv_scheme.add(a, b))[0] == 1

    def test_negative_shift_rejected(self, bv_scheme, bv_keys):
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [1])
        with pytest.raises(ParameterError):
            bv_scheme.shift_up(ciphertext, -1)

    def test_shift_past_top_wraps_negated(self, bv_scheme, bv_keys):
        # x^n = -1: slots pushed past the top reappear at the bottom negated
        # (mod t).  Callers must treat them as garbage, but the algebra is
        # load-bearing for the across-row packing and must stay exact.
        n = bv_scheme.num_slots
        t = bv_scheme.slot_modulus
        values = [0] * n
        values[n - 1] = 9
        values[n - 2] = 5
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, values)
        shifted = bv_scheme.decrypt_slots(bv_keys, bv_scheme.shift_up(ciphertext, 2))
        assert shifted[0] == (t - 5) % t
        assert shifted[1] == (t - 9) % t
        assert all(value == 0 for value in shifted[2:])

    def test_decrypt_slots_many_matches_single(self, bv_scheme, bv_keys):
        ciphertexts = [
            bv_scheme.encrypt_slots(bv_keys.public, [index, 2 * index + 1])
            for index in range(5)
        ]
        batched = bv_scheme.decrypt_slots_many(bv_keys, ciphertexts)
        assert batched == [bv_scheme.decrypt_slots(bv_keys, ct) for ct in ciphertexts]
        assert bv_scheme.decrypt_slots_many(bv_keys, []) == []

    def test_combine_stacked_matches_operation_chain(self, bv_scheme, bv_keys):
        ciphertexts = [
            bv_scheme.encrypt_slots(bv_keys.public, [1 + index, 100 + index])
            for index in range(4)
        ]
        stack = bv_scheme.stack_ciphertexts(ciphertexts)
        rows, scalars = [0, 2, 3], [3, 1, 7]
        batched = bv_scheme.combine_stacked(stack, rows, scalars)
        reference = None
        for row, scalar in zip(rows, scalars):
            term = bv_scheme.scalar_mul(ciphertexts[row], scalar)
            reference = term if reference is None else bv_scheme.add(reference, term)
        assert bv_scheme.decrypt_slots(bv_keys, batched) == bv_scheme.decrypt_slots(
            bv_keys, reference
        )

    def test_combine_stacked_shifted_matches_operation_chain(self, bv_scheme, bv_keys):
        ciphertexts = [
            bv_scheme.encrypt_slots(bv_keys.public, [2 + index, 30 + index])
            for index in range(3)
        ]
        stack = bv_scheme.stack_ciphertexts(ciphertexts)
        # Repeated rows with different shifts exercise the combining-polynomial
        # fold (one spectrum-domain product per distinct ciphertext).
        terms = [(0, 2, 0), (0, 1, 4), (1, 3, 2), (2, 1, 0), (0, 5, 4)]
        batched = bv_scheme.combine_stacked_shifted(stack, terms)
        reference = None
        for row, scalar, shift in terms:
            term = bv_scheme.scalar_mul(ciphertexts[row], scalar)
            if shift:
                term = bv_scheme.shift_up(term, shift)
            reference = term if reference is None else bv_scheme.add(reference, term)
        assert bv_scheme.decrypt_slots(bv_keys, batched) == bv_scheme.decrypt_slots(
            bv_keys, reference
        )

    def test_seeded_keypair_is_reproducible_public_part(self, bv_scheme):
        keys_1 = bv_scheme.generate_keypair(seed=b"joint-seed")
        keys_2 = bv_scheme.generate_keypair(seed=b"joint-seed")
        import numpy as np

        assert np.array_equal(
            keys_1.public.payload.p1.residues, keys_2.public.payload.p1.residues
        )

    def test_ciphertext_size_matches_parameters(self):
        scheme = BVScheme(BVParameters.test_parameters())
        # Wire codec header (u32 n + u8 primes) plus two polynomials of
        # per-prime u32 residues.
        n = scheme.parameters.ring_degree
        primes = scheme.parameters.prime_count
        expected = 5 + 2 * primes * n * 4
        assert scheme.ciphertext_size_bytes() == expected

    def test_ciphertext_size_is_exact_wire_size(self, bv_scheme, bv_keys):
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [1, 2, 3])
        encoded = bv_scheme.serialize_ciphertext(ciphertext)
        assert len(encoded) == bv_scheme.ciphertext_size_bytes()

    def test_wide_slots_roundtrip_beyond_int64(self):
        # slot_bits >= 64 is a valid parameterization (three 31-bit primes);
        # slot values above 2^63 must take the exact big-int reduction path.
        scheme = BVScheme(
            BVParameters(ring_degree=64, prime_bits=31, prime_count=3, slot_bits=70)
        )
        keys = scheme.generate_keypair()
        values = [2**65 + 12345, 5, 2**69]
        decrypted = scheme.decrypt_slots(keys, scheme.encrypt_slots(keys.public, values))
        assert decrypted[: len(values)] == values

    def test_bool_slot_values_rejected(self, bv_scheme, bv_keys):
        with pytest.raises(ParameterError):
            bv_scheme.encrypt_slots(bv_keys.public, [True, 5])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            BVParameters(ring_degree=100)
        with pytest.raises(ParameterError):
            BVParameters(slot_bits=60, prime_bits=31, prime_count=2)


class TestPaillierSpecific:
    def test_no_slot_shift_support(self, paillier_scheme, paillier_keys):
        ciphertext = paillier_scheme.encrypt_slots(paillier_keys.public, [1])
        with pytest.raises(ParameterError):
            paillier_scheme.shift_up(ciphertext, 1)

    def test_keys_under_different_moduli_cannot_mix(self, paillier_scheme, paillier_keys):
        other_keys = paillier_scheme.generate_keypair()
        a = paillier_scheme.encrypt_slots(paillier_keys.public, [1])
        b = paillier_scheme.encrypt_slots(other_keys.public, [2])
        with pytest.raises(ParameterError):
            paillier_scheme.add(a, b)

    def test_seeded_keypair_reproducible(self):
        scheme = PaillierScheme(modulus_bits=128, slot_bits=16)
        keys_1 = scheme.generate_keypair(seed=b"seed")
        keys_2 = scheme.generate_keypair(seed=b"seed")
        assert keys_1.public.payload.n == keys_2.public.payload.n

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            PaillierScheme(modulus_bits=32)
        with pytest.raises(ParameterError):
            PaillierScheme(modulus_bits=256, slot_bits=300)
