"""Tests for the from-scratch ChaCha20 implementation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.chacha import chacha20_block, chacha20_xor
from repro.exceptions import ParameterError

KEY = bytes(range(32))
NONCE = bytes(12)


class TestBlockFunction:
    def test_block_length(self):
        assert len(chacha20_block(KEY, 0, NONCE)) == 64

    def test_block_deterministic(self):
        assert chacha20_block(KEY, 1, NONCE) == chacha20_block(KEY, 1, NONCE)

    def test_counter_changes_block(self):
        assert chacha20_block(KEY, 1, NONCE) != chacha20_block(KEY, 2, NONCE)

    def test_nonce_changes_block(self):
        other_nonce = bytes(11) + b"\x01"
        assert chacha20_block(KEY, 1, NONCE) != chacha20_block(KEY, 1, other_nonce)

    def test_key_changes_block(self):
        other_key = bytes(31) + b"\x01"
        assert chacha20_block(KEY, 1, NONCE) != chacha20_block(other_key, 1, NONCE)

    def test_bad_key_length(self):
        with pytest.raises(ParameterError):
            chacha20_block(b"short", 0, NONCE)

    def test_bad_nonce_length(self):
        with pytest.raises(ParameterError):
            chacha20_block(KEY, 0, b"short")

    def test_bad_counter(self):
        with pytest.raises(ParameterError):
            chacha20_block(KEY, 2**32, NONCE)


class TestStreamCipher:
    def test_roundtrip(self):
        plaintext = b"attack at dawn" * 10
        ciphertext = chacha20_xor(KEY, NONCE, plaintext)
        assert ciphertext != plaintext
        assert chacha20_xor(KEY, NONCE, ciphertext) == plaintext

    def test_empty_plaintext(self):
        assert chacha20_xor(KEY, NONCE, b"") == b""

    def test_ciphertext_length_matches(self):
        for length in (1, 63, 64, 65, 1000):
            assert len(chacha20_xor(KEY, NONCE, b"a" * length)) == length

    def test_different_keys_give_different_ciphertexts(self):
        plaintext = b"x" * 128
        other_key = bytes(reversed(KEY))
        assert chacha20_xor(KEY, NONCE, plaintext) != chacha20_xor(other_key, NONCE, plaintext)

    def test_wrong_key_does_not_decrypt(self):
        plaintext = b"secret message"
        ciphertext = chacha20_xor(KEY, NONCE, plaintext)
        other_key = bytes(reversed(KEY))
        assert chacha20_xor(other_key, NONCE, ciphertext) != plaintext

    @given(st.binary(max_size=300), st.integers(min_value=1, max_value=2**31))
    def test_roundtrip_property(self, plaintext, counter):
        ciphertext = chacha20_xor(KEY, NONCE, plaintext, initial_counter=counter)
        assert chacha20_xor(KEY, NONCE, ciphertext, initial_counter=counter) == plaintext
