"""Bit-identity pins for the batched ciphertext-fabrication paths.

Every vectorised fast path added for the fabrication hot spots — batched
encryption, stacked addition, gather-and-shift candidate extraction, the
vectorised blinding entry points, Garner CRT, and the optional compiled NTT
backend — promises *bit-identical* output to its scalar reference.  These
tests hold each path to that promise under a shared seeded PRG, so any future
"optimisation" that changes results (rather than just speed) fails loudly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ntt_compiled
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.ntt import get_ntt_plan, ntt_friendly_primes
from repro.crypto.packing import PackedLinearModel
from repro.crypto.prg import Prg
from repro.crypto.ringlwe import RingContext, RingPolynomial
from repro.exceptions import ParameterError
from repro.twopc.blinding import (
    blind_dot_products,
    blind_dot_products_reference,
    blind_extracted_candidates,
    blind_extracted_candidates_reference,
)
from repro.utils.rand import secure_uniform_array, secure_uniform_ints


def _wire(scheme, ciphertexts):
    return [scheme.serialize_ciphertext(ct) for ct in ciphertexts]


class TestBatchedEncryption:
    def test_encrypt_slots_many_matches_loop_on_shared_stream(self, bv_scheme, bv_keys):
        rng = np.random.default_rng(11)
        vectors = rng.integers(
            0, bv_scheme.slot_modulus, size=(7, bv_scheme.num_slots), dtype=np.uint64
        ).astype(object).tolist()
        vectors = [[int(v) for v in row] for row in vectors]
        batched = bv_scheme.encrypt_slots_many(
            bv_keys.public, vectors, prg=Prg(b"enc-many", domain=b"pin")
        )
        loop = [
            bv_scheme.encrypt_slots(bv_keys.public, row, prg=prg)
            for prg in [Prg(b"enc-many", domain=b"pin")]
            for row in vectors
        ]
        assert _wire(bv_scheme, batched) == _wire(bv_scheme, loop)

    def test_ndarray_and_list_inputs_agree(self, bv_scheme, bv_keys):
        rng = np.random.default_rng(12)
        matrix = rng.integers(0, bv_scheme.slot_modulus, size=(4, bv_scheme.num_slots), dtype=np.uint64)
        from_array = bv_scheme.encrypt_slots_many(
            bv_keys.public, matrix, prg=Prg(b"enc-kind", domain=b"pin")
        )
        from_lists = bv_scheme.encrypt_slots_many(
            bv_keys.public,
            [[int(v) for v in row] for row in matrix],
            prg=Prg(b"enc-kind", domain=b"pin"),
        )
        assert _wire(bv_scheme, from_array) == _wire(bv_scheme, from_lists)

    def test_short_vectors_pad_with_zero_slots(self, bv_scheme, bv_keys):
        ragged = bv_scheme.encrypt_slots_many(
            bv_keys.public, np.array([[5, 6], [7, 8]]), prg=Prg(b"enc-pad", domain=b"pin")
        )
        padded = bv_scheme.encrypt_slots_many(
            bv_keys.public,
            [[5, 6] + [0] * (bv_scheme.num_slots - 2), [7, 8] + [0] * (bv_scheme.num_slots - 2)],
            prg=Prg(b"enc-pad", domain=b"pin"),
        )
        assert _wire(bv_scheme, ragged) == _wire(bv_scheme, padded)

    def test_batched_ciphertexts_decrypt_correctly(self, bv_scheme, bv_keys):
        rng = np.random.default_rng(13)
        matrix = rng.integers(0, bv_scheme.slot_modulus, size=(5, bv_scheme.num_slots), dtype=np.uint64)
        ciphertexts = bv_scheme.encrypt_slots_many(bv_keys.public, matrix)
        decrypted = bv_scheme.decrypt_slots_many(bv_keys, ciphertexts)
        assert decrypted == matrix.astype(object).tolist()

    def test_empty_batch(self, bv_scheme, bv_keys):
        assert bv_scheme.encrypt_slots_many(bv_keys.public, []) == []
        assert bv_scheme.encrypt_slots_many(bv_keys.public, np.zeros((0, 4), dtype=np.int64)) == []

    def test_out_of_range_matrix_rejected(self, bv_scheme, bv_keys):
        with pytest.raises(ParameterError):
            bv_scheme.encrypt_slots_many(bv_keys.public, np.array([[-1]]))
        with pytest.raises(ParameterError):
            bv_scheme.encrypt_slots_many(bv_keys.public, np.array([[bv_scheme.slot_modulus]]))
        with pytest.raises(ParameterError):
            bv_scheme.encrypt_slots_many(bv_keys.public, np.array([[0.5]]))
        too_wide = np.zeros((1, bv_scheme.num_slots + 1), dtype=np.int64)
        with pytest.raises(ParameterError):
            bv_scheme.encrypt_slots_many(bv_keys.public, too_wide)

    def test_paillier_default_accepts_ndarray(self, paillier_scheme, paillier_keys):
        matrix = np.array([[3, 1], [4, 1]], dtype=np.int64)
        ciphertexts = paillier_scheme.encrypt_slots_many(paillier_keys.public, matrix)
        keypair = paillier_keys
        assert paillier_scheme.decrypt_slots(keypair, ciphertexts[0])[:2] == [3, 1]
        assert paillier_scheme.decrypt_slots(keypair, ciphertexts[1])[:2] == [4, 1]


class TestBatchedHomomorphicOps:
    def test_add_many_matches_scalar_add(self, bv_scheme, bv_keys):
        rng = np.random.default_rng(21)
        lefts = bv_scheme.encrypt_slots_many(
            bv_keys.public,
            rng.integers(0, bv_scheme.slot_modulus, size=(6, bv_scheme.num_slots), dtype=np.uint64),
        )
        rights = bv_scheme.encrypt_slots_many(
            bv_keys.public,
            rng.integers(0, bv_scheme.slot_modulus, size=(6, bv_scheme.num_slots), dtype=np.uint64),
        )
        batched = bv_scheme.add_many(lefts, rights)
        loop = [bv_scheme.add(left, right) for left, right in zip(lefts, rights)]
        assert _wire(bv_scheme, batched) == _wire(bv_scheme, loop)
        assert bv_scheme.add_many([], []) == []

    def test_add_many_length_mismatch_rejected(self, bv_scheme, bv_keys):
        ct = bv_scheme.encrypt_slots(bv_keys.public, [1])
        with pytest.raises(ParameterError):
            bv_scheme.add_many([ct], [])

    def test_extract_shift_many_matches_shift_up_loop(self, bv_scheme, bv_keys):
        rng = np.random.default_rng(22)
        sources = bv_scheme.encrypt_slots_many(
            bv_keys.public,
            rng.integers(0, bv_scheme.slot_modulus, size=(3, bv_scheme.num_slots), dtype=np.uint64),
        )
        n = bv_scheme.num_slots
        indices = [0, 2, 1, 0, 2, 2]
        shifts = [0, 1, n - 1, n // 2, 5, n - 1]
        batched = bv_scheme.extract_shift_many(sources, indices, shifts)
        loop = [bv_scheme.shift_up(sources[i], s) for i, s in zip(indices, shifts)]
        assert _wire(bv_scheme, batched) == _wire(bv_scheme, loop)
        assert bv_scheme.extract_shift_many(sources, [], []) == []

    def test_extract_shift_many_validates_arguments(self, bv_scheme, bv_keys):
        ct = bv_scheme.encrypt_slots(bv_keys.public, [1])
        with pytest.raises(ParameterError):
            bv_scheme.extract_shift_many([ct], [0], [0, 1])
        with pytest.raises(ParameterError):
            bv_scheme.extract_shift_many([ct], [0], [-1])

    @given(
        slot=st.integers(min_value=0, max_value=255),
        shift=st.integers(min_value=0, max_value=255),
        value=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_batched_shift_slot_semantics(self, bv_scheme, bv_keys, slot, shift, value):
        """Slot ``s`` lands at ``s + shift``; past-the-top wraps *negated* mod t.

        ``x^n = -1`` in the negacyclic ring, so a value pushed past the last
        slot reappears at the bottom as ``t - value`` — the wraparound the
        across-row packing relies on callers treating as garbage.
        """
        n = bv_scheme.num_slots
        vector = [0] * n
        vector[slot] = value
        source = bv_scheme.encrypt_slots(bv_keys.public, vector)
        (shifted,) = bv_scheme.extract_shift_many([source], [0], [shift])
        decrypted = bv_scheme.decrypt_slots(bv_keys, shifted)
        target = slot + shift
        if target < n:
            assert decrypted[target] == value
        else:
            assert decrypted[target - n] == (-value) % bv_scheme.slot_modulus

    @given(exponents=st.lists(st.integers(min_value=0, max_value=2 * 256 - 1), min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_monomial_spectra_many_matches_per_exponent(self, exponents):
        ring = RingContext.create(ring_degree=256, prime_bits=31, prime_count=2)
        stacked = ring.monomial_spectra_many(exponents)
        assert stacked.shape == (len(exponents), len(ring.primes), ring.n)
        for row, exponent in enumerate(exponents):
            assert np.array_equal(stacked[row], ring.monomial_spectra(exponent))


@pytest.fixture(scope="module")
def blinding_setup(bv_scheme, bv_keys):
    rng = np.random.default_rng(31)
    matrix = rng.integers(0, 100, size=(40, 12)).tolist()
    model = PackedLinearModel.encrypt(bv_scheme, bv_keys.public, matrix, across_rows=True)
    result = model.dot_products([(0, 2), (17, 1), (33, 3)])
    return model, result


class TestBlindingBitIdentity:
    def test_blind_dot_products_matches_reference(self, bv_scheme, bv_keys, blinding_setup):
        model, result = blinding_setup
        columns = [0, 3, 7, 11]
        batched = blind_dot_products(
            bv_scheme, bv_keys.public, model, result, columns, dot_bits=20,
            prg=Prg(b"blind-dp", domain=b"pin"),
        )
        reference = blind_dot_products_reference(
            bv_scheme, bv_keys.public, model, result, columns, dot_bits=20,
            prg=Prg(b"blind-dp", domain=b"pin"),
        )
        assert batched.output_noise == reference.output_noise
        assert _wire(bv_scheme, batched.ciphertexts) == _wire(bv_scheme, reference.ciphertexts)

    def test_blind_extracted_candidates_matches_reference(self, bv_scheme, bv_keys, blinding_setup):
        model, result = blinding_setup
        columns = [1, 5, 5, 9, 0]  # repeated candidates gather the same source
        batched = blind_extracted_candidates(
            bv_scheme, bv_keys.public, model, result, columns, dot_bits=20,
            prg=Prg(b"blind-cand", domain=b"pin"),
        )
        reference = blind_extracted_candidates_reference(
            bv_scheme, bv_keys.public, model, result, columns, dot_bits=20,
            prg=Prg(b"blind-cand", domain=b"pin"),
        )
        assert batched.output_noise == reference.output_noise
        assert _wire(bv_scheme, batched.ciphertexts) == _wire(bv_scheme, reference.ciphertexts)

    def test_reference_paths_still_unblind(self, bv_scheme, bv_keys, blinding_setup):
        model, result = blinding_setup
        blinded = blind_extracted_candidates_reference(
            bv_scheme, bv_keys.public, model, result, [4], dot_bits=20
        )
        ct_index, slot, _ = blinded.output_noise[4]
        assert slot == bv_scheme.num_slots - 1
        assert len(blinded.ciphertexts) == 1


class TestUniformDraws:
    def test_array_and_list_draws_agree_on_one_stream(self):
        as_list = secure_uniform_ints(1 << 32, 50, Prg(b"uniform", domain=b"pin"))
        as_array = secure_uniform_array(1 << 32, 50, Prg(b"uniform", domain=b"pin"))
        assert as_array.dtype == np.int64
        assert as_array.tolist() == as_list

    def test_array_draw_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError):
            secure_uniform_array(10, 4)
        with pytest.raises(ParameterError):
            secure_uniform_array(1 << 64, 4)

    def test_array_draw_edge_counts(self):
        assert secure_uniform_array(8, 0).tolist() == []
        assert secure_uniform_array(1, 3).tolist() == [0, 0, 0]


class TestGarnerCrt:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1), prime_count=st.sampled_from([1, 2, 3]))
    @settings(max_examples=15, deadline=None)
    def test_garner_matches_object_dtype_reference(self, seed, prime_count):
        # prime_count=3 pushes q past 62 bits, exercising the object-dtype
        # final recombination branch; 1 and 2 stay int64 end to end.
        ring = RingContext.create(ring_degree=64, prime_bits=31, prime_count=prime_count)
        rng = np.random.default_rng(seed)
        residues = rng.integers(0, min(ring.primes), size=(3, len(ring.primes), ring.n))
        fast = ring.crt_reconstruct_array(residues)
        reference = ring.crt_reconstruct_array_reference(residues)
        assert fast.tolist() == reference.tolist()

    def test_object_dtype_input_falls_back_to_reference(self):
        ring = RingContext.create(ring_degree=64, prime_bits=31, prime_count=2)
        residues = np.ones((len(ring.primes), ring.n), dtype=object)
        assert ring.crt_reconstruct_array(residues).tolist() == (
            ring.crt_reconstruct_array_reference(residues).tolist()
        )


# -- optional compiled backend -------------------------------------------------

numba_required = pytest.mark.skipif(
    not ntt_compiled.available(), reason="numba is not installed"
)


class TestCompiledBackend:
    def test_probe_is_boolean_and_stable(self):
        first = ntt_compiled.available()
        assert isinstance(first, bool)
        assert ntt_compiled.available() == first
        if not first:
            assert ntt_compiled.kernels() is None

    def test_unavailable_backend_request_fails_cleanly(self):
        if ntt_compiled.available():
            pytest.skip("numba present; explicit-backend failure path not reachable")
        with pytest.raises(ParameterError):
            get_ntt_plan(64, ntt_friendly_primes(1, 31, 64), backend="numba")

    @numba_required
    def test_numba_forward_matches_numpy(self):
        degree = 256
        primes = ntt_friendly_primes(2, 31, degree)
        numpy_plan = get_ntt_plan(degree, primes, backend="numpy")
        numba_plan = get_ntt_plan(degree, primes, backend="numba")
        rng = np.random.default_rng(41)
        stack = rng.integers(0, min(primes), size=(5, len(primes), degree))
        assert np.array_equal(numpy_plan.forward(stack), numba_plan.forward(stack))
        spectra = numpy_plan.forward(stack)
        assert np.array_equal(numpy_plan.inverse(spectra), numba_plan.inverse(spectra))

    @numba_required
    def test_numba_scheme_end_to_end_matches_numpy(self):
        parameters = BVParameters.test_parameters()
        numpy_scheme = BVScheme(parameters)
        numba_scheme = BVScheme(parameters)
        numba_scheme.ring = RingContext.create(
            ring_degree=parameters.ring_degree,
            prime_bits=parameters.prime_bits,
            prime_count=parameters.prime_count,
            backend="numba",
        )
        keys = numpy_scheme.generate_keypair(seed=b"backend-parity")
        vectors = np.arange(3 * parameters.ring_degree, dtype=np.int64).reshape(3, -1)
        numpy_cts = numpy_scheme.encrypt_slots_many(
            keys.public, vectors, prg=Prg(b"parity", domain=b"pin")
        )
        numba_cts = numba_scheme.encrypt_slots_many(
            keys.public, vectors, prg=Prg(b"parity", domain=b"pin")
        )
        assert _wire(numpy_scheme, numpy_cts) == _wire(numba_scheme, numba_cts)
        assert numpy_scheme.decrypt_slots_many(keys, numpy_cts) == (
            numba_scheme.decrypt_slots_many(keys, numba_cts)
        )
