"""Adversarial wire-format fuzzing: `WireCodec.decode` is a trust boundary.

Frames arrive from the peer — a deployed provider decodes bytes written by
arbitrary clients — so decoding must be total over byte strings: for ANY
input it either raises :class:`~repro.exceptions.WireFormatError` or returns
a frame whose re-encoding decodes to the same frame (idempotence).  Anything
else — ``IndexError``, ``struct.error``, ``ValueError``, a numpy shape error,
a hang — is an escape an adversary can aim at the serving loop.

Three generators, all seeded (export ``WIRE_FUZZ_SEED`` to reproduce a CI
failure; every assertion message carries the seed):

* random byte strings, with and without a valid header prefix;
* truncations of valid frames at **every** prefix length (a strict prefix
  must never decode — the parser consumes the full frame exactly);
* single-bit flips of valid frames, exhaustively for the small frames and
  seeded-sampled for the multi-kilobyte ciphertext frames.

The whole suite is marked ``fuzz`` so CI can run it as its own job
(``pytest -m fuzz``) with a fresh seed per run.
"""

import os
import random

import pytest

from repro.exceptions import WireFormatError
from repro.twopc.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    BlindedScoresFrame,
    ClassifyResultFrame,
    ControlFrame,
    ControlVerb,
    FeaturesFrame,
    FrameType,
    GarbledCircuitFrame,
    OtCipherPairsFrame,
    OtExtColumnsFrame,
    OtExtPairsFrame,
    OtPublicsFrame,
    OtResponsesFrame,
    OutputLabelsFrame,
    SessionState,
    SessionStateFrame,
    SessionStateKind,
    WireCodec,
)

pytestmark = pytest.mark.fuzz

FUZZ_SEED = int(os.environ.get("WIRE_FUZZ_SEED", "20260728"))

ALL_FRAME_TYPES = [
    value for name, value in vars(FrameType).items() if not name.startswith("_")
]

schemeless_codec = WireCodec()


def _valid_frames():
    """One representative valid frame per schemeless frame type."""
    from repro.crypto.garbled import LABEL_BYTES, GarbledGate, GarbledTables

    return [
        OtPublicsFrame((1, 255, 2**40, 0)),
        OtResponsesFrame((17,)),
        OtCipherPairsFrame(((b"x", b"yz"), (b"", b"abc"))),
        OtExtPairsFrame(((b"\x00" * 16, b"\xff" * 16),)),
        OtExtColumnsFrame((b"ab", b"", b"column-three"), start_index=7),
        OutputLabelsFrame((bytes(range(LABEL_BYTES)), b"\x42" * LABEL_BYTES)),
        FeaturesFrame(((1, 2), (3, 4), (0xFFFFFFFF, 0))),
        ClassifyResultFrame(5),
        GarbledCircuitFrame(
            tables=GarbledTables(
                and_gates={
                    3: GarbledGate(gate_index=3, rows=[bytes([i]) * LABEL_BYTES for i in range(4)]),
                    9: GarbledGate(gate_index=9, rows=[bytes([i + 8]) * LABEL_BYTES for i in range(4)]),
                },
                output_decode=[(b"\xaa" * LABEL_BYTES, b"\xbb" * LABEL_BYTES)],
            ),
            garbler_labels=(b"\xcc" * LABEL_BYTES,),
            decode_at_evaluator=True,
        ),
        SessionStateFrame(
            SessionState(
                kind=SessionStateKind.OT_POOL, version=1, payload=b"\x01\x02\x03\x04"
            )
        ),
        ControlFrame(
            verb=ControlVerb.COMMAND, version=1, payload=b"\x05\x06\x07\x08"
        ),
    ]


def _decode_never_escapes(codec, data: bytes, context: str):
    """Decode *data*; fail on any non-WireFormatError escape.

    Returns the decoded frame, or ``None`` if decoding (correctly) rejected
    the input.  On success the re-encoding must decode to the same bytes —
    accepted inputs must be stable under a decode/encode cycle, otherwise two
    honest parties could disagree about what crossed the wire.
    """
    try:
        frame = codec.decode(data)
    except WireFormatError:
        return None
    except Exception as error:  # noqa: BLE001 — the point of the suite
        pytest.fail(
            f"{context}: decode escaped with {type(error).__name__}: {error} "
            f"[WIRE_FUZZ_SEED={FUZZ_SEED}, data={data[:64].hex()}"
            f"{'...' if len(data) > 64 else ''}]"
        )
    try:
        first = codec.encode(frame)
        second = codec.encode(codec.decode(first))
    except WireFormatError as error:
        pytest.fail(
            f"{context}: decoded frame failed to re-encode/re-decode: {error} "
            f"[WIRE_FUZZ_SEED={FUZZ_SEED}, data={data[:64].hex()}]"
        )
    assert second == first, (
        f"{context}: decode/encode cycle is not idempotent "
        f"[WIRE_FUZZ_SEED={FUZZ_SEED}, data={data[:64].hex()}]"
    )
    return frame


class TestRandomBytes:
    def test_pure_random_bytes(self):
        rng = random.Random(FUZZ_SEED)
        for case in range(400):
            data = rng.randbytes(rng.randint(0, 300))
            _decode_never_escapes(schemeless_codec, data, f"random case {case}")

    def test_random_bodies_behind_valid_header(self):
        # Get past the magic/version/type gate so the body parsers see fuzz.
        rng = random.Random(FUZZ_SEED + 1)
        for case in range(600):
            frame_type = rng.choice(ALL_FRAME_TYPES + [rng.randrange(256)])
            data = bytes([WIRE_MAGIC, WIRE_VERSION, frame_type]) + rng.randbytes(
                rng.randint(0, 300)
            )
            _decode_never_escapes(
                schemeless_codec, data, f"headered case {case} (type 0x{frame_type:02x})"
            )

    def test_random_bodies_behind_ciphertext_header(self, bv_scheme, bv_keys):
        # Ciphertext frames delegate to the scheme codec; fuzz that path too.
        codec = WireCodec(scheme=bv_scheme, public_key=bv_keys.public)
        rng = random.Random(FUZZ_SEED + 2)
        for case in range(200):
            data = bytes([WIRE_MAGIC, WIRE_VERSION, FrameType.BLINDED_SCORES]) + rng.randbytes(
                rng.randint(0, 400)
            )
            _decode_never_escapes(codec, data, f"ciphertext-header case {case}")


class TestTruncatedFrames:
    @pytest.mark.parametrize(
        "frame", _valid_frames(), ids=lambda frame: type(frame).__name__
    )
    def test_every_strict_prefix_is_rejected(self, frame):
        encoded = schemeless_codec.encode(frame)
        for length in range(len(encoded)):
            with pytest.raises(WireFormatError):
                schemeless_codec.decode(encoded[:length])
            # A strict prefix never decodes: the parser consumes the whole
            # frame, so running out of bytes is detected before any output.

    def test_bv_frame_prefixes(self, bv_scheme, bv_keys):
        codec = WireCodec(scheme=bv_scheme, public_key=bv_keys.public)
        ciphertext = bv_scheme.encrypt_slots(bv_keys.public, [7, 11, 13])
        encoded = codec.encode(BlindedScoresFrame((ciphertext,)))
        rng = random.Random(FUZZ_SEED + 3)
        lengths = set(range(0, 64)) | {
            rng.randrange(len(encoded)) for _ in range(200)
        } | {len(encoded) - 1}
        for length in sorted(lengths):
            with pytest.raises(WireFormatError):
                codec.decode(encoded[:length])


class TestBitFlips:
    @pytest.mark.parametrize(
        "frame", _valid_frames(), ids=lambda frame: type(frame).__name__
    )
    def test_every_single_bit_flip(self, frame):
        encoded = bytearray(schemeless_codec.encode(frame))
        for bit in range(8 * len(encoded)):
            encoded[bit // 8] ^= 1 << (bit % 8)
            _decode_never_escapes(
                schemeless_codec, bytes(encoded), f"{type(frame).__name__} bit {bit}"
            )
            encoded[bit // 8] ^= 1 << (bit % 8)

    def test_sampled_bit_flips_of_bv_frame(self, bv_scheme, bv_keys):
        codec = WireCodec(scheme=bv_scheme, public_key=bv_keys.public)
        ciphertexts = tuple(
            bv_scheme.encrypt_slots(bv_keys.public, [index]) for index in range(2)
        )
        encoded = bytearray(codec.encode(BlindedScoresFrame(ciphertexts)))
        rng = random.Random(FUZZ_SEED + 4)
        bits = {rng.randrange(8 * len(encoded)) for _ in range(400)}
        # Always include the header and the length prefixes, the likeliest
        # places for a flip to redirect the parser.
        bits |= set(range(8 * 16))
        for bit in sorted(bits):
            encoded[bit // 8] ^= 1 << (bit % 8)
            _decode_never_escapes(codec, bytes(encoded), f"bv frame bit {bit}")
            encoded[bit // 8] ^= 1 << (bit % 8)
