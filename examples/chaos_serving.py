#!/usr/bin/env python3
"""Degraded-network serving: fault injection, reliable framing, reconnect-resume.

A deployed Pretzel client is a phone on a flaky network.  This example shows
the resilience layer built for that, in three acts:

1. a spam classification runs over a pipe that injects seeded
   drop/corrupt/reorder/duplicate faults, first raw (it breaks) and then
   through :class:`~repro.twopc.reliable.ReliableChannel`, the ack/retransmit
   layer that turns the damaged pipe into exactly-once in-order frames —
   the verdict is bit-identical to a clean run;
2. the fault ledger and retransmission stats show exactly what the network
   did and what the reliability layer paid to survive it;
3. a client disconnects mid-protocol (its decrypt parked in the provider's
   open window), carries its :class:`SessionState` snapshot away, reconnects
   on a fresh channel, and resumes to the same verdict — zero resubmissions.

Run with:  python examples/chaos_serving.py
"""

from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.core.runtime import DecryptScheduler, ProviderRuntime, spam_job
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import generate_group
from repro.exceptions import ProtocolError
from repro.twopc.reliable import chaos_channel
from repro.twopc.spam import SpamClientSession, SpamFilterProtocol
from repro.twopc.transport import FaultSpec, FaultyTransport, FramedChannel, LoopbackTransport
from repro.twopc.wire import SessionState, WireCodec

import numpy as np

FEATURE_ROWS = 300
SEED = 20170814


def build_protocol():
    scheme = BVScheme(BVParameters.test_parameters())
    group = generate_group(256)
    rng = np.random.default_rng(5)
    linear = LinearModel(
        weights=rng.normal(size=(FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    return protocol, protocol.setup(quantized)


def main() -> None:
    protocol, setup = build_protocol()
    rng = np.random.default_rng(9)
    features = {int(row): 1 for row in rng.choice(FEATURE_ROWS, size=40, replace=False)}
    clean = protocol.classify_email(setup, features)
    print(f"clean run: is_spam={clean.is_spam} "
          f"({clean.network_messages} messages, {clean.network_bytes} bytes)")

    # --- Act 1: the same run over a damaged pipe ---------------------------
    print("\n25% drop + 25% corrupt per frame, raw pipe (no reliability layer):")
    spec = FaultSpec(drop_rate=0.25, corrupt_rate=0.25, seed=SEED)
    faulty = FaultyTransport(LoopbackTransport(parties=("client", "provider")), spec)
    codec = WireCodec(scheme=protocol.scheme, public_key=setup.keypair.public)
    try:
        protocol.classify_email(setup, features, channel=FramedChannel(faulty, codec))
        print("  survived (this seed was lucky)")
    except ProtocolError as error:
        print(f"  broke as expected: {type(error).__name__}: {error}")

    print("\nsame cocktail, same seed, through ReliableChannel:")
    channel, faulty, reliable = chaos_channel(
        FaultSpec(drop_rate=0.25, corrupt_rate=0.25, seed=SEED),
        scheme=protocol.scheme,
        public_key=setup.keypair.public,
    )
    chaotic = protocol.classify_email(setup, features, channel=channel)
    print(f"  completed: is_spam={chaotic.is_spam} "
          f"(bit-identical to clean: {chaotic.is_spam == clean.is_spam})")

    # --- Act 2: what the network did, what reliability paid ----------------
    counts = faulty.fault_counts()
    print(f"  faults injected: {counts}")
    print(f"  retransmissions: {reliable.stats['retransmissions']}, "
          f"acks: {reliable.stats['acks_sent']}, "
          f"corrupt frames dropped by CRC: {reliable.stats['corrupt_dropped']}, "
          f"duplicates deduplicated: {reliable.stats['duplicates_dropped']}")
    print(f"  logical payload bytes: {channel.total_bytes()}, "
          f"wire bytes under faults: {faulty.total_bytes()}")

    # --- Act 3: disconnect mid-protocol, snapshot, reconnect, resume -------
    print("\nreconnect-resume: client goes offline with its decrypt parked ...")
    pool = protocol.make_ot_pool(setup)
    runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
    job = spam_job(protocol, setup, features, label="phone-1", ot_pool=pool)
    runtime.serve_burst([job])  # parks in the open decrypt window
    state = runtime.disconnect_job("phone-1")
    blob = state.to_bytes()
    print(f"  disconnected: provider holds the parked decrypt, "
          f"client carries a {len(blob)}-byte SessionState snapshot")

    client = SpamClientSession.restore(
        protocol, setup, SessionState.from_bytes(blob), ot_pool=pool
    )
    runtime.reconnect_job("phone-1", protocol.make_channel(setup, name="reconnect"), client)
    finished = runtime.drain()
    resumed = finished[0].client
    print(f"  reconnected and drained: is_spam={resumed.is_spam} "
          f"(matches clean: {resumed.is_spam == clean.is_spam}, zero resubmissions)")
    assert resumed.is_spam == clean.is_spam
    assert chaotic.is_spam == clean.is_spam


if __name__ == "__main__":
    main()
