#!/usr/bin/env python3
"""Quickstart: send an end-to-end encrypted email and run every function module.

This walks through the whole Fig. 1 pipeline with small (fast) parameters:

1. build a Pretzel deployment (one provider, two users),
2. train the provider's spam and topic models on synthetic corpora,
3. attach the spam, topic and search modules to the recipient,
4. send an encrypted email and watch the modules produce their outputs
   together with the provider/client CPU and network costs.

Run with:  python examples/quickstart.py
"""

from repro.core import (
    PretzelConfig,
    PretzelSystem,
    SearchFunctionModule,
    SpamFunctionModule,
    TopicFunctionModule,
)
from repro.datasets import lingspam_like, newsgroups20_like, prepare_classification_data


def main() -> None:
    config = PretzelConfig.test()
    system = PretzelSystem(config)
    system.add_user("alice@example.com")
    bob = system.add_user("bob@example.com")

    print("Training the provider's models on synthetic corpora ...")
    spam_data = prepare_classification_data(lingspam_like(scale=0.3), boolean=True, max_features=1500)
    spam_labels = [1 if label == 1 else 0 for label in spam_data.train_labels]
    spam_module = SpamFunctionModule.train(config, spam_data.extractor, spam_data.train_vectors, spam_labels)

    topic_corpus = newsgroups20_like(scale=0.3)
    topic_data = prepare_classification_data(topic_corpus, max_features=1500)
    topic_module = TopicFunctionModule.train(
        config,
        topic_data.extractor,
        topic_data.train_vectors,
        topic_data.train_labels,
        topic_data.category_names,
    )

    bob.attach_module(spam_module)
    bob.attach_module(topic_module)
    bob.attach_module(SearchFunctionModule())
    print(f"Bob's client-side storage for encrypted models and indexes: "
          f"{bob.client_storage_bytes() / 1024:.1f} KB")

    # Alice sends Bob an email whose body is a document from the topic corpus,
    # so the topic module has something meaningful to extract.
    body = topic_corpus.documents[0]
    true_topic = topic_corpus.category_names[topic_corpus.labels[0]]
    print("\nAlice -> Bob: sending an end-to-end encrypted email ...")
    report = system.roundtrip("alice@example.com", "bob@example.com", "project update", body)

    spam_output = report.output_of("spam-filter")
    topic_output = report.output_of("topic-extraction")
    search_output = report.output_of("keyword-search")
    print(f"  spam module (client learns):   is_spam = {spam_output.is_spam}")
    print(f"  topic module (provider learns): topic = {topic_output.topic_name} "
          f"(generated from topic {true_topic!r}) out of {topic_output.candidates_considered} candidates")
    print(f"  search module (client only):    {search_output.indexed_documents} email(s) indexed")
    print(f"\nPer-email costs: provider CPU {report.total_provider_seconds * 1e3:.1f} ms, "
          f"client CPU {report.total_client_seconds * 1e3:.1f} ms, "
          f"protocol network {report.total_network_bytes / 1024:.1f} KB")


if __name__ == "__main__":
    main()
