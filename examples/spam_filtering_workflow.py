#!/usr/bin/env python3
"""Spam filtering over encrypted email: Pretzel vs Baseline vs NoPriv.

Trains a GR-NB spam model on a synthetic Ling-spam analogue, then classifies
a batch of test emails three ways:

* NoPriv — the provider sees plaintext (the status quo),
* Baseline — Paillier + Yao (§3.3),
* Pretzel — XPIR-BV + across-row packing + Yao (§4.1–§4.2),

and reports accuracy (identical across arms by construction), per-email
provider/client CPU and network bytes, and client-side model storage — a
miniature of the paper's §6.1.

Run with:  python examples/spam_filtering_workflow.py
"""

from repro.classify.metrics import accuracy
from repro.classify.model import QuantizedLinearModel
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.core import PretzelConfig
from repro.datasets import lingspam_like, prepare_classification_data
from repro.twopc.noprv import NoPrivClassifier
from repro.twopc.spam import SpamFilterProtocol


def main() -> None:
    config = PretzelConfig.test()
    data = prepare_classification_data(lingspam_like(scale=0.3), boolean=True, max_features=1500)
    train_labels = [1 if label == 1 else 0 for label in data.train_labels]
    test_labels = [1 if label == 1 else 0 for label in data.test_labels]

    print("Training a GR-NB spam model ...")
    classifier = GrahamRobinsonNaiveBayes(num_features=data.num_features)
    classifier.fit(data.train_vectors, train_labels)
    linear = classifier.to_linear_model()
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=config.value_bits, frequency_bits=config.frequency_bits
    )

    group = config.build_group()
    pretzel = SpamFilterProtocol(config.build_scheme(), group, across_row_packing=True)
    baseline_config = PretzelConfig.baseline()
    baseline_config.paillier_modulus_bits = 512
    baseline = SpamFilterProtocol(baseline_config.build_scheme(), group, across_row_packing=False)
    noprv = NoPrivClassifier(linear)

    print("Running the setup phase (model encryption) ...")
    pretzel_setup = pretzel.setup(quantized)
    baseline_setup = baseline.setup(quantized)
    print(f"  client storage — pretzel: {pretzel_setup.client_storage_bytes() / 1024:.0f} KB, "
          f"baseline: {baseline_setup.client_storage_bytes() / 1024:.0f} KB, "
          f"plaintext model: {linear.plaintext_size_bytes() / 1024:.0f} KB")

    sample = data.test_vectors[:8]
    sample_labels = test_labels[:8]
    arms = {"noprv": [], "baseline": [], "pretzel": []}
    costs = {"baseline": [0.0, 0.0, 0], "pretzel": [0.0, 0.0, 0]}
    for features in sample:
        is_spam, _ = noprv.classify_is_spam(features, spam_column=0)
        arms["noprv"].append(int(is_spam))
        for name, (protocol, setup) in (
            ("baseline", (baseline, baseline_setup)),
            ("pretzel", (pretzel, pretzel_setup)),
        ):
            result = protocol.classify_email(setup, features)
            arms[name].append(int(result.is_spam))
            costs[name][0] += result.provider_seconds
            costs[name][1] += result.client_seconds
            costs[name][2] += result.network_bytes

    print(f"\nClassified {len(sample)} test emails:")
    for name, predictions in arms.items():
        print(f"  {name:<9} accuracy {accuracy(predictions, sample_labels) * 100:.0f}%")
    print("\nPer-email averages:")
    for name, (provider, client, network) in costs.items():
        count = len(sample)
        print(f"  {name:<9} provider {provider / count * 1e3:.1f} ms, "
              f"client {client / count * 1e3:.1f} ms, network {network / count / 1024:.1f} KB")
    print("\nThe two secure arms agree with each other on every email:",
          arms["baseline"] == arms["pretzel"])


if __name__ == "__main__":
    main()
