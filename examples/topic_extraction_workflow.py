#!/usr/bin/env python3
"""Decomposed topic extraction (§4.3): how B' trades cost for accuracy.

Trains a proprietary multinomial-NB topic model and a small *public*
candidate model (trained on 10% of the data), then extracts topics for a
batch of test documents with different candidate counts B'.  For each B' it
reports: how often the true topic was among the candidates (Fig. 14's
quantity), end-to-end agreement with the non-private argmax, and the
per-email provider CPU / network cost (Figs. 10 and 11's quantities).

Run with:  python examples/topic_extraction_workflow.py
"""

from repro.classify.metrics import candidate_recall
from repro.classify.model import QuantizedLinearModel
from repro.classify.naive_bayes import MultinomialNaiveBayes
from repro.core import PretzelConfig
from repro.datasets import newsgroups20_like, prepare_classification_data
from repro.twopc.topics import TopicExtractionProtocol
from repro.utils.rand import DeterministicRandom


def main() -> None:
    config = PretzelConfig.test()
    data = prepare_classification_data(newsgroups20_like(scale=0.3), max_features=1500)

    print("Training the provider's proprietary topic model (all training data) ...")
    proprietary = MultinomialNaiveBayes(
        num_features=data.num_features, category_names=data.category_names
    ).fit(data.train_vectors, data.train_labels).to_linear_model()

    print("Training the client's public candidate model (10% of training data) ...")
    rng = DeterministicRandom(23, label="example-public-model")
    indices = list(range(len(data.train_vectors)))
    rng.shuffle(indices)
    subset = indices[: max(data.num_categories, len(indices) // 10)]
    public = MultinomialNaiveBayes(
        num_features=data.num_features, category_names=data.category_names
    ).fit([data.train_vectors[i] for i in subset], [data.train_labels[i] for i in subset]).to_linear_model()

    quantized = QuantizedLinearModel.from_linear_model(
        proprietary, value_bits=config.value_bits, frequency_bits=config.frequency_bits
    )
    protocol = TopicExtractionProtocol(config.build_scheme(), config.build_group())
    setup = protocol.setup(quantized)
    print(f"Encrypted topic model at the client: {setup.client_storage_bytes() / 1024:.0f} KB "
          f"({quantized.num_categories} topics, {quantized.num_features} features)")

    sample = data.test_vectors[:6]
    truth = [quantized.predict(vector) for vector in sample]
    for candidate_count in (3, 5, 10):
        candidates_per_doc = [public.top_categories(vector, candidate_count) for vector in sample]
        recall = candidate_recall(candidates_per_doc, truth)
        agreements = 0
        provider_ms = 0.0
        network_kb = 0.0
        for vector, candidates, expected in zip(sample, candidates_per_doc, truth):
            result = protocol.extract_topic(setup, vector, candidate_topics=candidates)
            agreements += int(result.extracted_topic == expected)
            provider_ms += result.provider_seconds * 1e3
            network_kb += result.network_bytes / 1024
        count = len(sample)
        print(f"\nB' = {candidate_count}:")
        print(f"  candidate recall (true topic among candidates): {recall * 100:.0f}%")
        print(f"  agreement with the non-private argmax:          {agreements}/{count}")
        print(f"  per-email provider CPU {provider_ms / count:.1f} ms, network {network_kb / count:.0f} KB")


if __name__ == "__main__":
    main()
