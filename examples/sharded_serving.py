#!/usr/bin/env python3
"""The sharded serving stack: TCP sessions, worker shards, windowed decrypts.

Pretzel's deployability argument (§6.3) has a provider serving millions of
mailboxes.  This example drives the three layers this repository adds for
that scale:

1. **Real TCP** — one spam classification runs between an asyncio provider
   server and a client endpoint over an actual TCP connection, each side
   pumping its own reentrant session (frames are genuine wire bytes, counted
   exactly at both endpoints);
2. **Shard worker processes** — mailboxes partition across a
   :class:`ShardedRuntime` by stable hash; each worker keeps its own warm
   :class:`MailboxDirectory` (encrypted-model stacks, per-pair OT pools);
3. **Windowed decrypt scheduling** — each worker's
   :class:`DecryptScheduler` accumulates parked provider decrypts *across*
   email waves before one ``decrypt_slots_many`` folds them, and a forced
   worker restart mid-window shows the parent recovering in-flight emails.

Run with:  python examples/sharded_serving.py
"""

import asyncio
import time

from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.classify.model import QuantizedLinearModel
from repro.core import PretzelConfig, ShardedRuntime
from repro.core.runtime import run_spam_batch
from repro.datasets import lingspam_like, prepare_classification_data
from repro.twopc.session import AsyncSessionPump
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.transport import AsyncFramedChannel, AsyncTcpTransport
from repro.twopc.wire import WireCodec


def train_protocol(config):
    data = prepare_classification_data(
        lingspam_like(scale=0.25), boolean=True, max_features=1000
    )
    classifier = GrahamRobinsonNaiveBayes(num_features=data.num_features)
    classifier.fit(data.train_vectors, [1 if label == 1 else 0 for label in data.train_labels])
    quantized = QuantizedLinearModel.from_linear_model(
        classifier.to_linear_model(),
        value_bits=config.value_bits,
        frequency_bits=config.frequency_bits,
    )
    protocol = SpamFilterProtocol(config.build_scheme(), config.build_group())
    return protocol, quantized, data.test_vectors


async def one_session_over_tcp(protocol, setup, features):
    """Client and provider endpoints exchanging wire frames over localhost TCP."""
    pump = AsyncSessionPump()  # provider-side: batches same-tick decrypts

    def codec():
        return WireCodec(scheme=protocol.scheme, public_key=setup.keypair.public)

    async def handle_connection(transport):
        channel = AsyncFramedChannel(transport, codec())
        await pump.run_session(channel, "provider", protocol.provider_session(setup))

    server = await AsyncTcpTransport.start_server(handle_connection, port=0)
    port = server.sockets[0].getsockname()[1]

    transport = await AsyncTcpTransport.connect("127.0.0.1", port)
    channel = AsyncFramedChannel(transport, codec())
    session = protocol.client_session(setup, features)
    await AsyncSessionPump().run_session(channel, "client", session)
    stats = (session.is_spam, channel.total_bytes(), channel.total_messages(), channel.rounds())
    await channel.aclose()
    server.close()
    await server.wait_closed()
    return stats


def main() -> None:
    config = PretzelConfig.test()
    print("Training a GR-NB spam model ...")
    protocol, quantized, test_vectors = train_protocol(config)

    addresses = [f"user{i}@example.com" for i in range(4)]
    setups = {address: protocol.setup(quantized) for address in addresses}

    # -- 1. a real TCP session: two endpoints, an asyncio server, wire bytes --
    verdict, nbytes, nframes, nrounds = asyncio.run(
        one_session_over_tcp(protocol, setups[addresses[0]], test_vectors[0])
    )
    print(
        f"\nOne session over real TCP: verdict={'spam' if verdict else 'ham'}, "
        f"{nbytes} bytes in {nframes} frames ({nrounds} rounds)"
    )

    # -- 2 + 3. shard workers with windowed decrypt scheduling ----------------
    waves = [
        [(address, features) for address, features in zip(addresses, test_vectors[start : start + 4])]
        for start in range(0, 12, 4)
    ]
    total = sum(len(wave) for wave in waves)

    print(f"\nRegistering {len(addresses)} mailboxes across 4 shard workers ...")
    with ShardedRuntime(num_shards=4, window_bursts=2) as runtime:
        for address in addresses:
            runtime.register_spam(address, protocol, setups[address])
        partition = {address: runtime.shard_of(address) for address in addresses}
        print(f"  stable hash partition: {partition}")

        start = time.perf_counter()
        sharded_results = runtime.run_spam_stream(waves)
        sharded_seconds = time.perf_counter() - start

        # Forced mid-window restart: emails in the open window re-run cleanly.
        ids = runtime.submit_spam([(addresses[0], test_vectors[12])])
        resubmitted = runtime.restart_shard(runtime.shard_of(addresses[0]))
        runtime.drain()
        restarted_verdict = runtime.take_result(ids[0]).is_spam
        print(
            f"  forced shard restart mid-window: {resubmitted} in-flight email(s) "
            f"resubmitted, verdict recovered ({'spam' if restarted_verdict else 'ham'})"
        )
        stats = runtime.shard_stats()

    # The PR 2 single-loop drive over the same waves (fresh handshakes/burst).
    start = time.perf_counter()
    singleloop_verdicts = []
    for wave in waves:
        by_mailbox = {}
        for address, features in wave:
            by_mailbox.setdefault(address, []).append(features)
        for address, feature_sets in by_mailbox.items():
            singleloop_verdicts += [
                result.is_spam
                for result in run_spam_batch(protocol, setups[address], feature_sets)
            ]
        # (verdict order differs from the stream order; only rates compare)
    singleloop_seconds = time.perf_counter() - start

    sharded_verdicts = [result.is_spam for result in sharded_results]
    assert sorted(sharded_verdicts) == sorted(singleloop_verdicts), "outputs diverged"

    print(f"\nStream of {total} emails in {len(waves)} waves over {len(addresses)} mailboxes:")
    print(f"  single-loop drive    : {total / singleloop_seconds:6.1f} emails/s")
    print(f"  sharded (4 workers)  : {total / sharded_seconds:6.1f} emails/s")
    for shard, stat in enumerate(stats):
        print(
            f"  shard {shard}: {stat['mailboxes']} mailbox(es), "
            f"decrypt batches {stat['decrypt_batch_sizes']}"
        )
    spam_count = sum(1 for verdict in sharded_verdicts if verdict)
    print(f"  verdicts             : {spam_count} spam / {total - spam_count} ham")


if __name__ == "__main__":
    main()
