#!/usr/bin/env python3
"""The multi-user provider serving loop: concurrent sessions, real frames.

A deployed Pretzel provider (§6.3) drains bursts of email protocol sessions,
not one synchronous call at a time.  This example shows the runtime layer
introduced for that:

1. every protocol message travels as a typed, versioned wire frame with a
   real codec, so network costs are exact serialized byte counts (including
   one session driven over an actual OS socket pair);
2. two mailboxes are registered in a :class:`MailboxDirectory` (encrypted
   models stacked once, per-pair OT extension handshake done once);
3. a burst of emails for both users runs as concurrent sessions through
   :class:`ProviderRuntime` — provider decrypts batch per key pair, and the
   burst's throughput is compared against one-shot sequential runs.

Run with:  python examples/multi_user_runtime.py
"""

import time

from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.classify.model import QuantizedLinearModel
from repro.core import MailboxDirectory, PretzelConfig, ProviderRuntime
from repro.datasets import lingspam_like, prepare_classification_data
from repro.twopc.spam import SpamFilterProtocol
from repro.twopc.transport import FramedChannel, SocketTransport
from repro.twopc.wire import WireCodec


def main() -> None:
    config = PretzelConfig.test()
    data = prepare_classification_data(lingspam_like(scale=0.25), boolean=True, max_features=1000)
    labels = [1 if label == 1 else 0 for label in data.train_labels]

    print("Training a GR-NB spam model ...")
    classifier = GrahamRobinsonNaiveBayes(num_features=data.num_features)
    classifier.fit(data.train_vectors, labels)
    quantized = QuantizedLinearModel.from_linear_model(
        classifier.to_linear_model(),
        value_bits=config.value_bits,
        frequency_bits=config.frequency_bits,
    )

    group = config.build_group()
    protocol = SpamFilterProtocol(config.build_scheme(), group)

    # -- per-mailbox registration: setup + model-row stacks + OT handshake ----
    print("Registering two mailboxes (model encryption + per-pair OT handshake) ...")
    directory = MailboxDirectory()
    for address in ("alice@example.com", "bob@example.com"):
        directory.register_spam(address, protocol, protocol.setup(quantized))

    emails = data.test_vectors[:8]
    alice_emails, bob_emails = emails[:4], emails[4:]

    # -- one session over a real socket: the frames are genuine wire bytes ----
    _, alice_setup = directory.spam_of("alice@example.com")
    socket_channel = FramedChannel(
        SocketTransport(),
        WireCodec(scheme=protocol.scheme, public_key=alice_setup.keypair.public),
    )
    try:
        result = protocol.classify_email(alice_setup, alice_emails[0], channel=socket_channel)
    finally:
        socket_channel.close()
    print(
        f"\nOne session over an OS socket pair: verdict={'spam' if result.is_spam else 'ham'}, "
        f"{result.network_bytes} bytes in {result.network_messages} frames "
        f"({result.network_rounds} rounds)"
    )

    # -- sequential baseline: one-shot sessions, fresh base OTs per email -----
    start = time.perf_counter()
    sequential = [
        protocol.classify_email(setup, features)
        for setup, batch in (
            (directory.spam_of("alice@example.com")[1], alice_emails),
            (directory.spam_of("bob@example.com")[1], bob_emails),
        )
        for features in batch
    ]
    sequential_seconds = time.perf_counter() - start

    # -- the serving loop: all 8 emails as concurrent sessions ----------------
    runtime = ProviderRuntime()
    jobs = directory.spam_jobs("alice@example.com", alice_emails)
    jobs += directory.spam_jobs("bob@example.com", bob_emails)
    start = time.perf_counter()
    runtime.run(jobs)
    concurrent_seconds = time.perf_counter() - start

    sequential_verdicts = [r.is_spam for r in sequential]
    concurrent_verdicts = [job.client.is_spam for job in jobs]
    assert concurrent_verdicts == sequential_verdicts, "interleaving changed the outputs"

    print(f"\nBurst of {len(jobs)} emails across {directory.mailbox_count()} mailboxes:")
    print(f"  sequential one-shots : {len(jobs) / sequential_seconds:6.1f} emails/s")
    print(f"  serving loop         : {len(jobs) / concurrent_seconds:6.1f} emails/s")
    print(f"  decrypt batches      : {runtime.decrypt_batch_sizes} ciphertexts "
          f"(one vectorised call per mailbox key pair)")
    example = jobs[0]
    print(f"  per-email network    : {example.channel.total_bytes()} bytes, "
          f"{example.channel.total_messages()} frames, {example.channel.rounds()} rounds")
    spam_count = sum(1 for verdict in concurrent_verdicts if verdict)
    print(f"  verdicts             : {spam_count} spam / {len(jobs) - spam_count} ham "
          f"(identical to sequential)")


if __name__ == "__main__":
    main()
