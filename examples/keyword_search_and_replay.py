#!/usr/bin/env python3
"""Client-side keyword search (§5) and the replay defence (§4.4).

Part 1 builds the client-side search index over a mailbox of decrypted
emails and runs a few queries, reporting the Fig. 15 quantities (index size,
query and update latency).

Part 2 demonstrates the repetition/replay defence: a malicious provider
re-delivers the same signed ciphertext several times, and the client's
per-sender window drops every duplicate, so the provider cannot harvest more
than one topic-extraction output per email.

Run with:  python examples/keyword_search_and_replay.py
"""

import time

from repro.core import PretzelConfig, PretzelSystem, SearchFunctionModule
from repro.datasets import enron_like


def main() -> None:
    config = PretzelConfig.test()
    system = PretzelSystem(config)
    system.add_user("alice@example.com")
    bob = system.add_user("bob@example.com")
    search = SearchFunctionModule()
    bob.attach_module(search)

    corpus = enron_like(scale=0.4)
    print(f"Alice sends Bob {min(40, len(corpus))} encrypted emails; Bob indexes them locally ...")
    for body in corpus.documents[:40]:
        system.send_email("alice@example.com", "bob@example.com", "archive", body)
    reports = system.fetch_and_process("bob@example.com")
    update_seconds = sum(r.module_results["keyword-search"].client_seconds for r in reports)
    print(f"  indexed {search.index.document_count()} emails "
          f"({search.client_storage_bytes() / 1024:.1f} KB index, "
          f"{update_seconds / max(1, len(reports)) * 1e3:.2f} ms per email)")

    keyword = corpus.documents[0].split()[0]
    start = time.perf_counter()
    matches, latency = search.search(keyword)
    print(f"  query {keyword!r}: {len(matches)} matching emails in {latency * 1e3:.2f} ms "
          f"(end-to-end {1e3 * (time.perf_counter() - start):.2f} ms)")

    # --- replay defence -----------------------------------------------------
    print("\nReplay defence: the provider re-delivers one of Alice's ciphertexts 3 times ...")
    mailbox = system.provider.mail.mailbox("bob@example.com")
    replayed = mailbox.emails[0]
    for _ in range(3):
        system.provider.mail.accept_delivery(replayed)
    fresh_reports = system.fetch_and_process("bob@example.com")
    print(f"  emails accepted after replay: {len(fresh_reports)} "
          "(duplicates silently dropped by the per-sender window)")
    assert len(fresh_reports) == 0


if __name__ == "__main__":
    main()
