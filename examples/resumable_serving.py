#!/usr/bin/env python3
"""Resumable sessions: checkpoint open decrypt windows, survive a SIGKILL.

A deployed Pretzel provider (§6.3) restarts worker processes all the time —
deploys, OOM kills, machine loss.  Before session persistence, a killed
worker's in-flight emails were *recomputed* from their features; now every
party machine snapshots to a typed, versioned
:class:`~repro.twopc.wire.SessionState` record, workers checkpoint their open
decrypt windows to a :class:`~repro.core.runtime.FileSessionStore` at each
burst boundary, and a replacement worker **resumes** the parked sessions —
no dot products, blinding, or OT handshakes re-run.

This walkthrough:

1. serializes one live mid-window session pair to bytes and restores it in a
   fresh serving loop (the in-process view of the contract);
2. SIGKILLs a shard worker with an open window and lets ``restart_shard``
   resume from the on-disk checkpoint, comparing recovery against the
   recompute fallback;
3. verifies both recoveries produce verdicts bit-identical to an
   uninterrupted run.

Run with:  python examples/resumable_serving.py
"""

import os
import signal
import tempfile
import time

from repro.classify.model import QuantizedLinearModel
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.core import PretzelConfig, ShardedRuntime
from repro.core.runtime import (
    DecryptScheduler,
    MailboxDirectory,
    ProviderRuntime,
    checkpoint_open_windows,
    restore_open_windows,
    spam_job,
)
from repro.datasets import lingspam_like, prepare_classification_data
from repro.twopc.spam import SpamFilterProtocol


def train_protocol(config):
    data = prepare_classification_data(
        lingspam_like(scale=0.25), boolean=True, max_features=1000
    )
    classifier = GrahamRobinsonNaiveBayes(num_features=data.num_features)
    classifier.fit(
        data.train_vectors, [1 if label == 1 else 0 for label in data.train_labels]
    )
    quantized = QuantizedLinearModel.from_linear_model(
        classifier.to_linear_model(),
        value_bits=config.value_bits,
        frequency_bits=config.frequency_bits,
    )
    protocol = SpamFilterProtocol(config.build_scheme(), config.build_group())
    return protocol, quantized, data.test_vectors


def snapshot_roundtrip(protocol, setup, emails, truth):
    """Park sessions mid-window, serialize them, resume in a fresh loop."""
    print("== 1. snapshot/restore one open decrypt window in-process ==")
    directory = MailboxDirectory()
    directory.register_spam("alice@example.com", protocol, setup)
    runtime = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
    jobs = [
        spam_job(protocol, setup, features, label=index,
                 ot_pool=directory.spam_pool_of("alice@example.com"))
        for index, features in enumerate(emails)
    ]
    runtime.serve_burst(jobs)  # everything parks inside the open window
    context = {job.label: ("spam", "alice@example.com") for job in jobs}
    blob = checkpoint_open_windows(runtime, directory, context)
    print(f"   {len(jobs)} parked sessions -> {len(blob)} checkpoint bytes")

    # A "fresh process": new directory, new loop, state only from bytes.
    fresh = MailboxDirectory()
    fresh.register_spam("alice@example.com", protocol, setup)
    restored = restore_open_windows(blob, fresh)
    runtime2 = ProviderRuntime(scheduler=DecryptScheduler(window_bursts=100))
    runtime2.serve_burst([job for _, _, _, job in restored])
    finished = runtime2.drain()
    verdicts = {job.label: job.client.is_spam for job in finished}
    resumed = [verdicts[index] for index in range(len(emails))]
    print(f"   resumed verdicts match uninterrupted run: {resumed == truth}")
    assert resumed == truth


def crash_and_recover(protocol, setup, emails, truth, checkpoint_dir):
    """SIGKILL a worker mid-window; resume (or recompute) and compare."""
    results = {}
    for arm, directory in (("recompute", None), ("resume", checkpoint_dir)):
        with ShardedRuntime(
            num_shards=1, window_bursts=100, checkpoint_dir=directory
        ) as runtime:
            runtime.register_spam("alice@example.com", protocol, setup)
            job_ids = runtime.submit_spam(
                [("alice@example.com", features) for features in emails]
            )
            os.kill(runtime.worker_pid(0), signal.SIGKILL)
            runtime.join_worker(0)
            begin = time.perf_counter()
            resubmitted = runtime.restart_shard(0)
            runtime.drain()
            recovery_ms = (time.perf_counter() - begin) * 1e3
            verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
        assert verdicts == truth, f"{arm} recovery diverged from the honest run"
        results[arm] = (recovery_ms, resubmitted)
        print(
            f"   {arm:9s}: {recovery_ms:7.1f} ms recovery, "
            f"{resubmitted} emails resubmitted"
        )
    return results


def main():
    config = PretzelConfig.test()
    protocol, quantized, test_vectors = train_protocol(config)
    setup = protocol.setup(quantized)
    emails = test_vectors[:4]
    truth = [protocol.classify_email(setup, features).is_spam for features in emails]
    print(f"baseline verdicts (uninterrupted): {truth}\n")

    snapshot_roundtrip(protocol, setup, emails, truth)

    print("\n== 2. SIGKILL a shard worker mid-window, recover both ways ==")
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        results = crash_and_recover(protocol, setup, emails, truth, checkpoint_dir)
    resume_ms, resubmitted = results["resume"]
    recompute_ms, _ = results["recompute"]
    print(
        f"\nresume recovered {len(emails)} in-flight emails from SessionState "
        f"snapshots ({resubmitted} recomputed), "
        f"{recompute_ms / resume_ms:.1f}x faster than recomputing"
    )


if __name__ == "__main__":
    main()
