#!/usr/bin/env python3
"""Telemetry tour: metrics registry, per-email spans, and the exporters.

The serving stack instruments itself through :mod:`repro.obs` — a
process-local metrics registry (counters, gauges, log-bucket histograms)
plus a span tracer that follows one email end to end.  This example drives
a real windowed serving run and then reads everything back, in three acts:

1. serve a burst of spam classifications through a
   :class:`~repro.core.runtime.ProviderRuntime` whose decrypt window is
   held open, scraping the registry **mid-drain** (open windows and all);
2. drain, and walk one email's span chain —
   ``enqueue -> window_park -> decrypt -> reply`` under one trace id;
3. render the same telemetry through all three exporters (Prometheus
   text, bundled JSON, Chrome trace), validate each against the golden
   schema, and write the artifact trio to disk.

Run with:  python examples/telemetry_tour.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.classify.model import LinearModel, QuantizedLinearModel
from repro.core.runtime import DecryptScheduler, ProviderRuntime, spam_job
from repro.crypto.bv import BVParameters, BVScheme
from repro.crypto.dh import generate_group
from repro.mail.traces import VirtualClock
from repro.obs import scoped_telemetry
from repro.obs.export import (
    chrome_trace,
    json_text,
    prometheus_text,
    validate_chrome_trace,
    validate_snapshot,
    write_artifacts,
)
from repro.twopc.spam import SpamFilterProtocol

FEATURE_ROWS = 300
EMAILS = 4


def build_protocol():
    scheme = BVScheme(BVParameters.test_parameters())
    group = generate_group(256)
    rng = np.random.default_rng(5)
    linear = LinearModel(
        weights=rng.normal(size=(FEATURE_ROWS, 2)),
        biases=np.array([0.25, -0.25]),
        category_names=["spam", "ham"],
    )
    quantized = QuantizedLinearModel.from_linear_model(
        linear, value_bits=10, frequency_bits=4, max_features_per_email=4096
    )
    protocol = SpamFilterProtocol(scheme, group)
    return protocol, protocol.setup(quantized)


def gauge(snapshot, name):
    return next(e["value"] for e in snapshot["gauges"] if e["name"] == name)


def counter(snapshot, name):
    return next(e["value"] for e in snapshot["counters"] if e["name"] == name)


def main() -> None:
    protocol, setup = build_protocol()
    rng = np.random.default_rng(9)
    feature_sets = [
        {int(row): 1 for row in rng.choice(FEATURE_ROWS, size=30, replace=False)}
        for _ in range(EMAILS)
    ]

    # An isolated registry/tracer for the run: nothing from module import
    # time (or a previous run) pollutes the story we read back.
    with scoped_telemetry() as (registry, tracer):
        clock = VirtualClock()
        runtime = ProviderRuntime(
            scheduler=DecryptScheduler(
                window_bursts=100, max_delay_seconds=2.0, clock=clock
            )
        )
        jobs = [
            spam_job(protocol, setup, features, label=index)
            for index, features in enumerate(feature_sets)
        ]

        # -- act 1: park the burst, scrape mid-drain ----------------------
        parked = runtime.serve_burst(jobs)
        assert parked == []  # every decrypt is parked in the open window
        mid = registry.snapshot()
        validate_snapshot(mid)
        print("mid-drain scrape (decrypt window still open):")
        print(f"  pending_window_ciphertexts = {gauge(mid, 'pending_window_ciphertexts'):.0f}")
        print(f"  emails_served_total        = {counter(mid, 'emails_served_total'):.0f}")

        # -- act 2: close the window, walk one email's span chain ---------
        clock.advance(2.0)
        finished = runtime.poll()
        print(f"\nwindow aged out: {len(finished)} emails finished in one flush")
        spans = tracer.snapshot()
        chain = [span for span in spans if span["trace_id"] == "email-0"]
        print("span chain for email-0 (virtual seconds):")
        for span in chain:
            width = span["end_seconds"] - span["start_seconds"]
            print(
                f"  {span['name']:<12} [{span['start_seconds']:.3f}, "
                f"{span['end_seconds']:.3f}]  ({width:.3f}s)  {span['meta'] or ''}"
            )
        assert [span["name"] for span in chain] == [
            "enqueue", "window_park", "decrypt", "reply", "email",
        ]

        # -- act 3: the exporters -----------------------------------------
        done = registry.snapshot()
        validate_snapshot(done)
        prom = prometheus_text(done)
        batch_lines = [
            line for line in prom.splitlines()
            if line.startswith("decrypt_batch_ciphertexts_")
            and ("_sum" in line or "_count" in line)
        ]
        print("\nprometheus exposition (batch-size series):")
        for line in batch_lines:
            print(f"  {line}")

        document = chrome_trace(spans)
        validate_chrome_trace(document)
        lanes = {e["tid"] for e in document["traceEvents"] if e["ph"] == "X"}
        print(f"\nchrome trace: {len(document['traceEvents'])} events "
              f"across {len(lanes)} email lanes (load in chrome://tracing)")

        bundled = json.loads(json_text(done, spans))
        print(f"bundled JSON: schema={bundled['schema']}, "
              f"{len(bundled['spans'])} spans, "
              f"{len(bundled['metrics']['histograms'])} histogram series")

        with tempfile.TemporaryDirectory() as tmp:
            paths = write_artifacts(Path(tmp) / "tour.telemetry", done, spans)
            print("\nartifact trio written:")
            for path in paths:
                print(f"  {path.name}  ({path.stat().st_size} bytes)")

    print("\ntelemetry tour complete: registry scraped, chain closed, exporters valid")


if __name__ == "__main__":
    main()
