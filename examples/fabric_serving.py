#!/usr/bin/env python3
"""The cross-host shard fabric: TCP agents, a control plane, live migration.

The sharded runtime of ``sharded_serving.py`` keeps its workers on local
pipes; the fabric puts real TCP under them so shards can run on remote
hosts.  This example drives the three fabric layers on one machine:

1. **Worker agents** — two standalone processes, each serving one shard of
   the mailbox hash partition over a versioned control protocol (HELLO
   handshake, command/reply, heartbeats) on a reliable transport;
2. **The control plane** — a :class:`FabricRuntime` parent that replays
   registrations to its agents, routes emails by stable mailbox hash, and
   aggregates each agent's streamed metrics snapshots fold-once;
3. **Live shard migration** — mid-stream, with decrypt windows still open,
   agent 0's whole hash range is checkpointed, restored onto a freshly
   spawned third process and retired — zero emails resubmitted, verdicts
   unchanged, every email counted on exactly one agent.

Run with:  python examples/fabric_serving.py
"""

import time

from repro.classify.model import QuantizedLinearModel
from repro.classify.naive_bayes import GrahamRobinsonNaiveBayes
from repro.core import PretzelConfig
from repro.datasets import lingspam_like, prepare_classification_data
from repro.fabric import launch_fabric, spawn_local_agent
from repro.twopc.spam import SpamFilterProtocol


def train_protocol(config):
    data = prepare_classification_data(
        lingspam_like(scale=0.25), boolean=True, max_features=1000
    )
    classifier = GrahamRobinsonNaiveBayes(num_features=data.num_features)
    classifier.fit(
        data.train_vectors, [1 if label == 1 else 0 for label in data.train_labels]
    )
    quantized = QuantizedLinearModel.from_linear_model(
        classifier.to_linear_model(),
        value_bits=config.value_bits,
        frequency_bits=config.frequency_bits,
    )
    protocol = SpamFilterProtocol(config.build_scheme(), config.build_group())
    return protocol, quantized, data.test_vectors


def main() -> None:
    config = PretzelConfig.test()
    print("Training a GR-NB spam model ...")
    protocol, quantized, test_vectors = train_protocol(config)

    addresses = [f"user{i}@example.com" for i in range(4)]
    setups = {address: protocol.setup(quantized) for address in addresses}

    print("\nSpawning 2 fabric agents (own processes, reached only over TCP) ...")
    runtime, agents = launch_fabric(2, window_bursts=2, metrics_interval=0.1)
    try:
        for agent in agents:
            print(f"  agent {agent.shard_index}: pid {agent.pid}, port {agent.port}")
        for address in addresses:
            runtime.register_spam(address, protocol, setups[address])
        partition = {address: runtime.shard_of(address) for address in addresses}
        print(f"  stable hash partition: {partition}")

        # A stream of email waves; the first wave's decrypt windows are still
        # open (2-burst scheduler) when the migration below fires.
        waves = [
            [
                (address, features)
                for address, features in zip(
                    addresses, test_vectors[start : start + 4]
                )
            ]
            for start in range(0, 12, 4)
        ]
        total = sum(len(wave) for wave in waves)

        start_time = time.perf_counter()
        job_ids = runtime.submit_spam(waves[0])
        print(
            f"\nWave 1 submitted: {runtime.outstanding_count()} emails inside "
            "open decrypt windows"
        )

        # -- live migration: agent 0's hash range moves to a fresh process ----
        spare = spawn_local_agent(shard_index=2)
        agents.append(spare)
        target = runtime.attach_agent(spare)
        moved = [slot for slot, owner in enumerate(runtime.slot_owners()) if owner == 0]
        resubmitted = runtime.migrate_agent(0, target)
        print(
            f"Live migration: slot(s) {moved} checkpointed on agent 0, restored "
            f"on agent {target} (pid {spare.pid}) — {resubmitted} emails "
            "resubmitted, open windows carried over"
        )
        print(f"  slot owners now: {runtime.slot_owners()}, agent 0 retired")

        for wave in waves[1:]:
            job_ids += runtime.submit_spam(wave)
        runtime.drain()
        verdicts = [runtime.take_result(job_id).is_spam for job_id in job_ids]
        elapsed = time.perf_counter() - start_time

        merged = runtime.aggregated_metrics()
        served = sum(
            entry["value"]
            for entry in merged["counters"]
            if entry["name"] == "emails_served_total"
        )
        assert resubmitted == 0, "migration must carry every open window"
        assert served == total, "every email must be served on exactly one agent"

        spam_count = sum(1 for verdict in verdicts if verdict)
        print(f"\nStream of {total} emails in {len(waves)} waves over the fabric:")
        print(f"  throughput          : {total / elapsed:6.1f} emails/s (incl. migration)")
        print(f"  verdicts            : {spam_count} spam / {total - spam_count} ham")
        print(f"  emails_served_total : {served:.0f} (exactly-once across the handover)")
        for stats in runtime.agent_stats():
            print(
                f"  agent {stats['agent']}: {stats['mailboxes']} mailbox(es), "
                f"decrypt batches {stats['decrypt_batch_sizes']}, "
                f"{stats['link']['retransmissions']} control retransmissions"
            )
    finally:
        runtime.close()
        for agent in agents:
            if agent.wait(timeout=10.0) is None:
                agent.kill()
    print("\nAll agents exited cleanly.")


if __name__ == "__main__":
    main()
